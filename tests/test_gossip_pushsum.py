"""Push-sum (Algorithm 1): the paper's worked example and protocol laws."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.pushsum import PushSumResult, push_sum, push_sum_step, scripted_push_sum


class TestStep:
    def test_single_step_mass_conservation(self, rng):
        n = 16
        x = rng.random(n)
        w = rng.random(n)
        ids = np.arange(n)
        targets = rng.integers(0, n - 1, size=n)
        targets[targets >= ids] += 1
        x2, w2 = push_sum_step(x, w, targets)
        assert x2.sum() == pytest.approx(x.sum())
        assert w2.sum() == pytest.approx(w.sum())

    def test_step_matches_paper_example_step1(self):
        # Fig. 2(a): N1->N3, N2->N1, N3->N1.
        x, w = push_sum_step(
            np.array([0.1, 0.0, 0.1]), np.array([0.0, 1.0, 0.0]), np.array([2, 0, 0])
        )
        assert x.tolist() == pytest.approx([0.1, 0.0, 0.1])
        assert w.tolist() == pytest.approx([0.5, 0.5, 0.0])

    def test_bad_targets_shape(self):
        with pytest.raises(ValidationError):
            push_sum_step(np.ones(3), np.ones(3), np.array([0, 1]))


class TestScriptedTable1:
    """The paper's Table 1 / Fig. 2 example, following the worked text."""

    X0 = [0.1, 0.0, 0.1]
    W0 = [0.0, 1.0, 0.0]

    def test_step1_matches_worked_text(self):
        res = scripted_push_sum(self.X0, self.W0, [[2, 0, 0]])
        x, w = res.history[0]
        # Text: N1 holds (0.1, 0.5) with beta 0.2; N2 beta = 0; N3 beta = inf.
        assert (x[0], w[0]) == pytest.approx((0.1, 0.5))
        assert res.estimates[0] == pytest.approx(0.2)
        assert res.estimates[1] == pytest.approx(0.0)
        assert res.estimates[2] == math.inf

    def test_step2_reaches_consensus_02_everywhere(self):
        res = scripted_push_sum(self.X0, self.W0, [[2, 0, 0], [2, 2, 1]])
        assert np.allclose(res.estimates, 0.2)

    def test_consensus_equals_eq6_dot_product(self):
        # v2(t+1) = 1/2*0.2 + 1/3*0 + 1/6*0.6 = 0.2
        v = np.array([0.5, 1 / 3, 1 / 6])
        s_col = np.array([0.2, 0.0, 0.6])
        assert float(v @ s_col) == pytest.approx(0.2)

    def test_mass_invariant_through_script(self):
        res = scripted_push_sum(self.X0, self.W0, [[2, 0, 0], [2, 2, 1]])
        assert res.x.sum() == pytest.approx(0.2)
        assert res.w.sum() == pytest.approx(1.0)

    def test_extra_step_keeps_consensus(self):
        res = scripted_push_sum(
            self.X0, self.W0, [[2, 0, 0], [2, 2, 1], [1, 0, 0]]
        )
        assert np.allclose(res.estimates, 0.2)

    def test_script_validation(self):
        with pytest.raises(ValidationError):
            scripted_push_sum(self.X0, self.W0, [[0, 1]])  # wrong arity
        with pytest.raises(ValidationError):
            scripted_push_sum(self.X0, self.W0, [[0, 1, 1]])  # self-partner
        with pytest.raises(ValidationError):
            scripted_push_sum(self.X0, self.W0, [[3, 0, 0]])  # out of range
        with pytest.raises(ValidationError):
            scripted_push_sum([0.1], [0.2, 0.3], [])  # mismatched vectors


class TestRandomPushSum:
    def test_converges_to_weighted_sum(self, rng):
        n = 64
        x0 = rng.random(n)
        w0 = np.zeros(n)
        w0[5] = 1.0
        truth = x0.sum()
        res = push_sum(x0, w0, epsilon=1e-8, rng=rng)
        assert res.converged
        finite = res.estimates[np.isfinite(res.estimates)]
        assert np.allclose(finite, truth, rtol=1e-4)

    def test_mass_conserved_after_convergence(self, rng):
        n = 32
        x0 = rng.random(n)
        w0 = np.zeros(n)
        w0[0] = 1.0
        res = push_sum(x0, w0, epsilon=1e-6, rng=rng)
        assert res.x.sum() == pytest.approx(x0.sum())
        assert res.w.sum() == pytest.approx(1.0)

    def test_steps_scale_logarithmically(self):
        steps = {}
        for n in (32, 256):
            x0 = np.ones(n)
            w0 = np.zeros(n)
            w0[0] = 1.0
            res = push_sum(x0, w0, epsilon=1e-6, rng=0)
            steps[n] = res.steps
        # 8x the nodes should cost only a few extra steps, not 8x.
        assert steps[256] < steps[32] * 3

    def test_deterministic_given_seed(self):
        x0, w0 = np.ones(10), np.eye(10)[0]
        a = push_sum(x0, w0, rng=3)
        b = push_sum(x0, w0, rng=3)
        assert np.array_equal(a.estimates, b.estimates)
        assert a.steps == b.steps

    def test_single_node_trivial(self):
        res = push_sum(np.array([0.7]), np.array([1.0]))
        assert res.steps == 0
        assert res.estimates[0] == pytest.approx(0.7)

    def test_budget_exhaustion_raises(self):
        x0, w0 = np.ones(16), np.eye(16)[0]
        with pytest.raises(ConvergenceError):
            push_sum(x0, w0, epsilon=1e-15, max_steps=3, rng=0)

    def test_budget_exhaustion_soft_mode(self):
        x0, w0 = np.ones(16), np.eye(16)[0]
        res = push_sum(x0, w0, epsilon=1e-15, max_steps=3, rng=0, raise_on_budget=False)
        assert not res.converged
        assert res.steps == 3

    def test_history_recording(self):
        x0, w0 = np.ones(8), np.eye(8)[0]
        res = push_sum(x0, w0, epsilon=1e-4, rng=1, record_history=True)
        assert len(res.history) == res.steps
        for x, w in res.history:
            assert x.sum() == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            push_sum(np.array([-1.0, 1.0]), np.array([1.0, 0.0]))
        with pytest.raises(ValidationError):
            push_sum(np.array([1.0, 1.0]), np.array([0.0, 0.0]))  # no w mass
        with pytest.raises(ValidationError):
            push_sum(np.ones(3), np.eye(3)[0], epsilon=0.0)

    def test_value_property(self):
        res = PushSumResult(
            estimates=np.array([0.2, np.inf, 0.2]),
            steps=1,
            converged=True,
            x=np.zeros(3),
            w=np.zeros(3),
        )
        assert res.value == pytest.approx(0.2)
