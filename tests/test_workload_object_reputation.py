"""Object (version) reputation semantics."""

import pytest

from repro.errors import ValidationError
from repro.types import TransactionOutcome
from repro.workload.object_reputation import ObjectReputation


@pytest.fixture
def obj():
    return ObjectReputation(n_files=10, versions_per_file=3)


class TestVoting:
    def test_unvoted_version_scores_prior(self, obj):
        assert obj.score(1, 0) == pytest.approx(0.5)

    def test_authentic_votes_raise_score(self, obj):
        for _ in range(5):
            obj.vote(1, 0, TransactionOutcome.AUTHENTIC)
        assert obj.score(1, 0) > 0.8

    def test_inauthentic_votes_lower_score(self, obj):
        for _ in range(5):
            obj.vote(1, 1, TransactionOutcome.INAUTHENTIC)
        assert obj.score(1, 1) < 0.2

    def test_weighted_votes_count_proportionally(self, obj):
        obj.vote(1, 0, TransactionOutcome.AUTHENTIC, weight=10.0)
        obj.vote(1, 0, TransactionOutcome.INAUTHENTIC, weight=1.0)
        assert obj.score(1, 0) > 0.7

    def test_heavy_liars_outweighed_by_reputable_votes(self, obj):
        # 10 liars with weight 0.1 vs 2 honest with weight 2.0
        for _ in range(10):
            obj.vote(2, 1, TransactionOutcome.AUTHENTIC, weight=0.1)  # poison praised
        for _ in range(2):
            obj.vote(2, 1, TransactionOutcome.INAUTHENTIC, weight=2.0)
        assert obj.score(2, 1) < 0.5

    def test_votes_counted(self, obj):
        obj.vote(1, 0, TransactionOutcome.AUTHENTIC)
        obj.vote(1, 1, TransactionOutcome.INAUTHENTIC)
        assert obj.votes_cast == 2

    def test_zero_weight_vote_is_noop_on_score(self, obj):
        before = obj.score(1, 0)
        obj.vote(1, 0, TransactionOutcome.INAUTHENTIC, weight=0.0)
        assert obj.score(1, 0) == pytest.approx(before)


class TestQueries:
    def test_best_version_picks_highest(self, obj):
        obj.vote(3, 0, TransactionOutcome.AUTHENTIC, weight=3.0)
        obj.vote(3, 2, TransactionOutcome.INAUTHENTIC, weight=3.0)
        assert obj.best_version(3) == 0

    def test_best_version_tie_prefers_lowest_id(self, obj):
        assert obj.best_version(5) == 0  # all at prior

    def test_validate_threshold(self, obj):
        obj.vote(4, 1, TransactionOutcome.INAUTHENTIC, weight=5.0)
        assert obj.validate(4, 1) is False
        assert obj.validate(4, 0) is True  # prior 0.5 >= 0.5

    def test_version_score_snapshot(self, obj):
        obj.vote(6, 0, TransactionOutcome.AUTHENTIC, weight=2.0)
        snap = obj.version_score(6, 0)
        assert snap.file_rank == 6
        assert snap.weighted_votes == pytest.approx(2.0)
        assert snap.score > 0.5


class TestValidation:
    def test_rank_and_version_bounds(self, obj):
        with pytest.raises(ValidationError):
            obj.vote(0, 0, TransactionOutcome.AUTHENTIC)
        with pytest.raises(ValidationError):
            obj.vote(11, 0, TransactionOutcome.AUTHENTIC)
        with pytest.raises(ValidationError):
            obj.score(1, 3)
        with pytest.raises(ValidationError):
            obj.best_version(0)

    def test_negative_weight_rejected(self, obj):
        with pytest.raises(ValidationError):
            obj.vote(1, 0, TransactionOutcome.AUTHENTIC, weight=-1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            ObjectReputation(0)
        with pytest.raises(ValidationError):
            ObjectReputation(5, versions_per_file=0)
        with pytest.raises(ValidationError):
            ObjectReputation(5, prior=1.5)
        with pytest.raises(ValidationError):
            ObjectReputation(5, prior_weight=0.0)

    def test_validate_threshold_bounds(self, obj):
        with pytest.raises(ValidationError):
            obj.validate(1, 0, threshold=2.0)
