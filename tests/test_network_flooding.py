"""TTL flooding search semantics."""

import pytest

from repro.errors import ValidationError
from repro.network.flooding import FloodSearch
from repro.network.overlay import Overlay
from repro.network.topology import Topology, random_graph


@pytest.fixture
def line():
    # 0 - 1 - 2 - 3 - 4
    return Overlay(Topology(5, [(i, i + 1) for i in range(4)]), rng=0)


class TestQuery:
    def test_finds_matching_nodes_within_ttl(self, line):
        flood = FloodSearch(line, default_ttl=2)
        res = flood.query(0, match=lambda v: v in (2, 4))
        assert res.responders == frozenset({2})  # node 4 is 4 hops away
        assert res.max_hop == 2

    def test_full_ttl_reaches_everything(self, line):
        flood = FloodSearch(line, default_ttl=7)
        res = flood.query(0, match=lambda v: True)
        assert res.responders == frozenset(range(5))
        assert res.reached == 5

    def test_issuer_can_match(self, line):
        res = FloodSearch(line).query(2, match=lambda v: v == 2)
        assert 2 in res.responders
        assert res.max_hop == 0

    def test_ttl_zero_only_issuer(self, line):
        res = FloodSearch(line).query(1, match=lambda v: True, ttl=0)
        assert res.responders == frozenset({1})
        assert res.messages == 0

    def test_departed_nodes_block_propagation(self, line):
        line.leave(2)
        res = FloodSearch(line).query(0, match=lambda v: v == 4)
        assert res.responders == frozenset()

    def test_message_count_counts_edge_crossings(self, line):
        # From node 0 on a line with TTL 1: one neighbor, one message.
        res = FloodSearch(line).query(0, match=lambda v: False, ttl=1)
        assert res.messages == 1
        # TTL 2: 0->1 then 1->{0,2}: 3 transmissions total.
        res = FloodSearch(line).query(0, match=lambda v: False, ttl=2)
        assert res.messages == 3

    def test_dead_source_rejected(self, line):
        line.leave(0)
        with pytest.raises(ValidationError):
            FloodSearch(line).query(0, match=lambda v: True)

    def test_counters_accumulate(self, line):
        flood = FloodSearch(line)
        flood.query(0, match=lambda v: False)
        flood.query(1, match=lambda v: False)
        assert flood.queries_issued == 2
        assert flood.total_messages > 0

    def test_negative_default_ttl_rejected(self, line):
        with pytest.raises(ValidationError):
            FloodSearch(line, default_ttl=-1)


class TestOnRandomGraph:
    def test_flood_covers_connected_graph(self):
        overlay = Overlay(random_graph(60, avg_degree=5.0, rng=3), rng=4)
        res = FloodSearch(overlay, default_ttl=30).query(0, match=lambda v: True)
        assert res.reached == 60
