"""Value-type behaviors: GossipPair, Triplet, ReputationVector."""

import math

import pytest

from repro.types import GossipPair, PeerClass, ReputationVector, Triplet


class TestGossipPair:
    def test_halved_splits_both_components(self):
        pair = GossipPair(x=0.4, w=1.0)
        half = pair.halved()
        assert half == GossipPair(0.2, 0.5)

    def test_merged_sums_components(self):
        merged = GossipPair(0.1, 0.2).merged(GossipPair(0.3, 0.4))
        assert merged.x == pytest.approx(0.4)
        assert merged.w == pytest.approx(0.6)

    def test_estimate_is_ratio(self):
        assert GossipPair(0.1, 0.5).estimate == pytest.approx(0.2)

    def test_estimate_with_zero_w_positive_x_is_inf(self):
        assert GossipPair(0.1, 0.0).estimate == math.inf

    def test_estimate_with_zero_mass_is_nan(self):
        assert math.isnan(GossipPair(0.0, 0.0).estimate)

    def test_halve_then_merge_restores_mass(self):
        pair = GossipPair(0.3, 0.7)
        half = pair.halved()
        assert half.merged(half) == pair

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GossipPair(1.0, 1.0).x = 2.0


class TestTriplet:
    def test_estimate(self):
        assert Triplet(x=0.05, node=3, w=0.25).estimate == pytest.approx(0.2)

    def test_estimate_zero_w(self):
        assert Triplet(x=0.1, node=0, w=0.0).estimate == math.inf
        assert math.isnan(Triplet(x=0.0, node=0, w=0.0).estimate)


class TestReputationVector:
    def test_score_lookup_and_default(self):
        v = ReputationVector(scores={0: 0.6, 1: 0.4})
        assert v.score(0) == 0.6
        assert v.score(99) == 0.0

    def test_top_orders_by_score_then_id(self):
        v = ReputationVector(scores={0: 0.2, 1: 0.5, 2: 0.2, 3: 0.1})
        assert v.top(3) == (1, 0, 2)

    def test_top_with_k_larger_than_population(self):
        v = ReputationVector(scores={0: 1.0})
        assert v.top(10) == (0,)

    def test_total(self):
        v = ReputationVector(scores={0: 0.25, 1: 0.75})
        assert v.total() == pytest.approx(1.0)


def test_peer_class_values_are_stable():
    # These strings appear in reports; renames are breaking changes.
    assert PeerClass.HONEST.value == "honest"
    assert PeerClass.MALICIOUS_INDEPENDENT.value == "malicious_independent"
    assert PeerClass.MALICIOUS_COLLUSIVE.value == "malicious_collusive"
    assert PeerClass.POWER.value == "power"


def test_package_public_surface_importable():
    """Every name in repro.__all__ resolves (the README's import paths)."""
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
