"""Feedback ledger semantics: EigenTrust-style balances, clamping."""

import pytest

from repro.errors import ValidationError
from repro.trust.feedback import FeedbackLedger
from repro.types import TransactionOutcome


@pytest.fixture
def ledger():
    return FeedbackLedger(5)


class TestTransactions:
    def test_authentic_increments_balance(self, ledger):
        ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        assert ledger.score(0, 1) == 1.0
        ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        assert ledger.score(0, 1) == 2.0

    def test_inauthentic_decrements_and_clamps_at_zero(self, ledger):
        ledger.record_transaction(0, 1, TransactionOutcome.INAUTHENTIC)
        assert ledger.score(0, 1) == 0.0
        ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        # Balance is -1 + 1 = 0, still clamped.
        assert ledger.score(0, 1) == 0.0

    def test_mixed_history_nets_out(self, ledger):
        for _ in range(3):
            ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        ledger.record_transaction(0, 1, TransactionOutcome.INAUTHENTIC)
        assert ledger.score(0, 1) == 2.0

    def test_transaction_counter(self, ledger):
        ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        ledger.record_transaction(2, 3, TransactionOutcome.FAILED)
        assert ledger.transactions == 2

    def test_history_kept_only_on_request(self):
        with_hist = FeedbackLedger(3, keep_history=True)
        with_hist.record_transaction(0, 1, TransactionOutcome.AUTHENTIC, time=4.5)
        assert len(with_hist.history()) == 1
        assert with_hist.history()[0].time == 4.5
        without = FeedbackLedger(3)
        without.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        assert without.history() == ()


class TestDirectScores:
    def test_set_and_get(self, ledger):
        ledger.set_score(1, 2, 0.6)
        assert ledger.score(1, 2) == 0.6

    def test_set_zero_clears_entry(self, ledger):
        ledger.set_score(1, 2, 0.6)
        ledger.set_score(1, 2, 0.0)
        assert ledger.score(1, 2) == 0.0
        assert ledger.out_degree(1) == 0

    def test_negative_raw_score_rejected(self, ledger):
        with pytest.raises(ValidationError):
            ledger.set_score(1, 2, -0.5)

    def test_add_score_clamps(self, ledger):
        ledger.add_score(0, 1, 0.5)
        ledger.add_score(0, 1, -2.0)
        assert ledger.score(0, 1) == 0.0


class TestValidation:
    def test_self_rating_rejected(self, ledger):
        with pytest.raises(ValidationError):
            ledger.record_transaction(2, 2, TransactionOutcome.AUTHENTIC)
        with pytest.raises(ValidationError):
            ledger.set_score(2, 2, 1.0)

    def test_out_of_range_ids(self, ledger):
        with pytest.raises(ValidationError):
            ledger.record_transaction(5, 0, TransactionOutcome.AUTHENTIC)
        with pytest.raises(ValidationError):
            ledger.score(0, 5)
        with pytest.raises(ValidationError):
            ledger.row(-1)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            FeedbackLedger(0)


class TestViews:
    def test_row_is_copy(self, ledger):
        ledger.set_score(0, 1, 1.0)
        row = ledger.row(0)
        row[1] = 99.0
        assert ledger.score(0, 1) == 1.0

    def test_nonzero_pairs(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.set_score(2, 3, 0.5)
        ledger.record_transaction(4, 0, TransactionOutcome.INAUTHENTIC)  # stays 0
        pairs = sorted(ledger.nonzero_pairs())
        assert pairs == [(0, 1, 1.0), (2, 3, 0.5)]

    def test_out_degree_counts_positive_only(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.set_score(0, 2, 2.0)
        ledger.record_transaction(0, 3, TransactionOutcome.INAUTHENTIC)
        assert ledger.out_degree(0) == 2


class TestDirtyRows:
    def test_fresh_ledger_has_no_dirty_rows(self, ledger):
        assert ledger.dirty_rows() == frozenset()

    def test_every_mutator_marks_its_rater(self, ledger):
        ledger.record_transaction(0, 1, TransactionOutcome.AUTHENTIC)
        ledger.set_score(2, 3, 1.5)
        ledger.add_score(4, 0, 0.25)
        assert ledger.dirty_rows() == frozenset({0, 2, 4})

    def test_reads_do_not_mark_dirty(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.clear_dirty()
        ledger.score(0, 1)
        ledger.row(0)
        ledger.out_degree(0)
        list(ledger.nonzero_pairs())
        assert ledger.dirty_rows() == frozenset()

    def test_drain_emits_current_clamped_rows_and_resets(self, ledger):
        ledger.set_score(0, 1, 2.0)
        ledger.set_score(0, 2, 1.0)
        ledger.record_transaction(3, 0, TransactionOutcome.INAUTHENTIC)  # clamps to 0
        deltas = ledger.drain_dirty()
        assert deltas == {0: {1: 2.0, 2: 1.0}, 3: {}}
        assert ledger.dirty_rows() == frozenset()
        assert ledger.drain_dirty() == {}

    def test_drain_is_sorted_by_rater(self, ledger):
        for rater in (4, 1, 3):
            ledger.set_score(rater, 0, 1.0)
        assert list(ledger.drain_dirty()) == [1, 3, 4]

    def test_clear_dirty_forgets_without_emitting(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.clear_dirty()
        assert ledger.dirty_rows() == frozenset()
        assert ledger.drain_dirty() == {}
        # The score itself survives; only the dirty mark is dropped.
        assert ledger.score(0, 1) == 1.0

    def test_row_decayed_to_zero_drains_as_empty(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.clear_dirty()
        ledger.add_score(0, 1, -1.0)
        assert ledger.drain_dirty() == {0: {}}

    def test_remutation_after_drain_marks_again(self, ledger):
        ledger.set_score(0, 1, 1.0)
        ledger.drain_dirty()
        ledger.add_score(0, 1, 0.5)
        assert ledger.dirty_rows() == frozenset({0})
