"""Synchronous vectorized gossip engine: accuracy, modes, convergence."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.engine import SynchronousGossipEngine


class TestFullMode:
    def test_cycle_estimates_exact_product(self, random_S):
        n = random_S.n
        engine = SynchronousGossipEngine(n, epsilon=1e-6, mode="full", rng=0)
        v = np.full(n, 1.0 / n)
        res = engine.run_cycle(random_S, v)
        assert res.converged
        assert res.mode == "full"
        exact = random_S.dense().T @ v
        assert np.allclose(res.v_next, exact, rtol=1e-3)
        assert res.gossip_error < 1e-3

    def test_tighter_epsilon_costs_more_steps(self, random_S):
        v = np.full(random_S.n, 1.0 / random_S.n)
        steps = {}
        for eps in (1e-2, 1e-6):
            engine = SynchronousGossipEngine(
                random_S.n, epsilon=eps, mode="full", rng=1
            )
            steps[eps] = engine.run_cycle(random_S, v).steps
        assert steps[1e-6] > steps[1e-2]

    def test_node_disagreement_small_after_convergence(self, random_S):
        engine = SynchronousGossipEngine(random_S.n, epsilon=1e-8, mode="full", rng=2)
        v = np.full(random_S.n, 1.0 / random_S.n)
        res = engine.run_cycle(random_S, v)
        assert res.node_disagreement < 1e-5

    def test_cycle_steps_log(self, random_S):
        engine = SynchronousGossipEngine(random_S.n, mode="full", rng=3)
        v = np.full(random_S.n, 1.0 / random_S.n)
        engine.run_cycle(random_S, v)
        engine.run_cycle(random_S, v)
        assert len(engine.cycle_steps) == 2
        engine.clear_stats()
        assert engine.cycle_steps == []


class TestProbeMode:
    def test_probe_returns_exact_vector_with_error_sample(self, random_S):
        n = random_S.n
        engine = SynchronousGossipEngine(
            n, epsilon=1e-5, mode="probe", probe_columns=8, rng=4
        )
        v = np.full(n, 1.0 / n)
        res = engine.run_cycle(random_S, v)
        assert res.mode == "probe"
        assert np.allclose(res.v_next, res.exact)
        assert res.gossip_error >= 0.0

    def test_probe_step_counts_match_full_roughly(self, random_S):
        n = random_S.n
        v = np.full(n, 1.0 / n)
        full = SynchronousGossipEngine(n, epsilon=1e-5, mode="full", rng=5)
        probe = SynchronousGossipEngine(
            n, epsilon=1e-5, mode="probe", probe_columns=8, rng=5
        )
        sf = full.run_cycle(random_S, v).steps
        sp = probe.run_cycle(random_S, v).steps
        assert abs(sf - sp) <= max(5, 0.4 * sf)

    def test_auto_mode_picks_by_size(self):
        small = SynchronousGossipEngine(100, mode="auto")
        large = SynchronousGossipEngine(2000, mode="auto")
        assert small.mode == "full"
        assert large.mode == "probe"


class TestValidationAndBudget:
    def test_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(10, mode="warp")

    def test_rejects_shape_mismatch(self, random_S):
        engine = SynchronousGossipEngine(random_S.n + 1)
        with pytest.raises(ValidationError):
            engine.run_cycle(random_S, np.full(random_S.n + 1, 0.1))

    def test_budget_raises(self, random_S):
        engine = SynchronousGossipEngine(
            random_S.n, epsilon=1e-12, mode="full", max_steps=2, rng=0
        )
        v = np.full(random_S.n, 1.0 / random_S.n)
        with pytest.raises(ConvergenceError):
            engine.run_cycle(random_S, v)

    def test_budget_soft_mode(self, random_S):
        engine = SynchronousGossipEngine(
            random_S.n, epsilon=1e-12, mode="full", max_steps=2, rng=0
        )
        v = np.full(random_S.n, 1.0 / random_S.n)
        res = engine.run_cycle(random_S, v, raise_on_budget=False)
        assert not res.converged
        assert res.steps == 2

    def test_accepts_dense_and_sparse_matrices(self, random_S):
        engine = SynchronousGossipEngine(random_S.n, mode="full", rng=6)
        v = np.full(random_S.n, 1.0 / random_S.n)
        r1 = engine.run_cycle(random_S.dense(), v)
        r2 = engine.run_cycle(random_S.sparse(), v)
        assert np.allclose(r1.exact, r2.exact)


class TestProbeColumnSelection:
    def test_top_mass_column_always_retained(self):
        # Regression: the old np.unique(...)[:p] truncation kept the p
        # *smallest* indices, silently dropping the guaranteed top-mass
        # column whenever its index was large.
        n, p = 100, 5
        for seed in range(20):
            engine = SynchronousGossipEngine(
                n, mode="probe", probe_columns=p, rng=seed
            )
            exact = np.zeros(n)
            exact[n - 1] = 1.0  # heaviest column has the largest index
            cols = engine._pick_probe_columns(np.full(n, 1.0 / n), exact)
            assert n - 1 in cols
            assert cols.size == p
            assert np.array_equal(cols, np.unique(cols))  # sorted, unique

    def test_probe_count_caps_at_n(self):
        engine = SynchronousGossipEngine(10, mode="probe", probe_columns=64, rng=0)
        cols = engine._pick_probe_columns(np.full(10, 0.1), np.arange(10.0))
        assert np.array_equal(cols, np.arange(10))

    def test_probe_cycle_error_sample_covers_top_column(self, random_S):
        n = random_S.n
        engine = SynchronousGossipEngine(
            n, epsilon=1e-5, mode="probe", probe_columns=4, rng=11
        )
        v = np.full(n, 1.0 / n)
        res = engine.run_cycle(random_S, v)
        assert res.converged
        assert np.isfinite(res.gossip_error)


class TestDeterminism:
    def test_same_seed_same_result(self, random_S):
        v = np.full(random_S.n, 1.0 / random_S.n)
        a = SynchronousGossipEngine(random_S.n, mode="full", rng=9).run_cycle(random_S, v)
        b = SynchronousGossipEngine(random_S.n, mode="full", rng=9).run_cycle(random_S, v)
        assert np.array_equal(a.v_next, b.v_next)
        assert a.steps == b.steps
