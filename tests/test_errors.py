"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_validation_error_is_value_error():
    assert issubclass(errors.ValidationError, ValueError)


def test_unknown_node_error_is_key_error():
    assert issubclass(errors.UnknownNodeError, KeyError)


def test_convergence_error_carries_diagnostics():
    err = errors.ConvergenceError("no luck", steps=42, residual=0.5)
    assert err.steps == 42
    assert err.residual == 0.5
    assert "no luck" in str(err)


def test_convergence_error_defaults():
    err = errors.ConvergenceError("plain")
    assert err.steps == -1
    assert err.residual != err.residual  # NaN


def test_catching_base_class_catches_subsystem_errors():
    with pytest.raises(errors.ReproError):
        raise errors.BloomCapacityError("full")
    with pytest.raises(errors.StorageError):
        raise errors.BloomCapacityError("full")


def test_signature_error_is_crypto_error():
    assert issubclass(errors.SignatureError, errors.CryptoError)


def test_partitioned_network_is_network_error():
    assert issubclass(errors.PartitionedNetworkError, errors.NetworkError)
