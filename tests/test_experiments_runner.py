"""The parallel sweep runner: ordering, chunking, errors, determinism.

The load-bearing property is the determinism contract — fanning sweep
points over worker processes must not change any experiment output,
because every point derives all randomness from its own root seed.  The
end-to-end tests pin that for the rewired experiments by comparing
``workers=1`` against ``workers=4`` runs field by field (notes are
excluded: they carry wall-time summaries that legitimately differ).
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.fig3_gossip_steps import run_fig3
from repro.experiments.runner import SweepOutcome, SweepPoint, SweepReport, run_sweep
from repro.experiments.table3_errors import run_table3
from repro.utils.rng import RngStreams


def _square_point(*, seed, offset=0):
    return seed * seed + offset


def _rng_point(*, seed):
    return float(RngStreams(seed).get("draw").random())


def _failing_point(*, seed):
    raise RuntimeError(f"point {seed} exploded")


def _points(fn, count, **kwargs):
    return [SweepPoint(fn=fn, kwargs=kwargs, seed=s, label=f"s{s}") for s in range(count)]


class TestRunSweep:
    def test_inline_executes_in_order(self):
        report = run_sweep(_points(_square_point, 5, offset=1), workers=1)
        assert report.values() == [s * s + 1 for s in range(5)]
        assert report.workers == 1
        assert len(report.outcomes) == 5
        assert all(isinstance(o, SweepOutcome) for o in report.outcomes)
        assert all(o.wall_time >= 0.0 for o in report.outcomes)

    def test_parallel_preserves_order_and_values(self):
        points = _points(_square_point, 9, offset=2)
        serial = run_sweep(points, workers=1)
        parallel = run_sweep(points, workers=4)
        assert parallel.values() == serial.values()
        assert parallel.workers == 4
        assert [o.point.seed for o in parallel.outcomes] == list(range(9))

    def test_parallel_matches_serial_rng_values(self):
        points = _points(_rng_point, 6)
        assert run_sweep(points, workers=3).values() == run_sweep(points).values()

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_explicit_chunk_size_keeps_order(self, chunk_size):
        points = _points(_square_point, 7)
        report = run_sweep(points, workers=2, chunk_size=chunk_size)
        assert report.values() == [s * s for s in range(7)]

    def test_empty_sweep(self):
        report = run_sweep([], workers=4)
        assert report.values() == []
        assert report.points_per_second == 0.0
        assert report.max_peak_rss_kib == 0.0

    def test_single_point_runs_inline(self):
        report = run_sweep(_points(_square_point, 1), workers=8)
        assert report.values() == [0]

    def test_workers_validation(self):
        with pytest.raises(ExperimentError):
            run_sweep(_points(_square_point, 2), workers=0)
        with pytest.raises(ExperimentError):
            run_sweep(_points(_square_point, 2), workers=2, chunk_size=0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_point_errors_propagate(self, workers):
        with pytest.raises(RuntimeError, match="exploded"):
            run_sweep(_points(_failing_point, 3), workers=workers)

    def test_report_aggregates(self):
        report = run_sweep(_points(_square_point, 4))
        assert report.total_point_time == pytest.approx(
            sum(o.wall_time for o in report.outcomes)
        )
        assert report.max_peak_rss_kib >= 0.0
        line = report.summary_line()
        assert "4 points" in line and "worker" in line

    def test_points_per_second(self):
        report = SweepReport(
            outcomes=[
                SweepOutcome(
                    point=SweepPoint(fn=_square_point, kwargs={}, seed=0),
                    value=0,
                    wall_time=0.5,
                    peak_rss_kib=1.0,
                )
            ]
            * 4,
            workers=2,
            wall_time=2.0,
        )
        assert report.points_per_second == pytest.approx(2.0)


def _strip_volatile(result):
    """Experiment output minus notes (notes carry wall-time summaries)."""
    return {
        "id": result.experiment_id,
        "tables": [t.render() for t in result.tables],
        "series": [(s.label, s.x, s.y) for s in result.series],
        "data": result.data,
    }


class TestParallelExperimentDeterminism:
    """workers=4 must reproduce workers=1 experiment output exactly."""

    def test_fig3_quick(self):
        kwargs = dict(
            sizes=(40, 60), epsilons=(1e-2,), repeats=2, cycles_per_point=1
        )
        serial = run_fig3(workers=1, **kwargs)
        parallel = run_fig3(workers=4, **kwargs)
        assert _strip_volatile(serial) == _strip_volatile(parallel)

    def test_table3_quick(self):
        kwargs = dict(n=60, repeats=2)
        serial = run_table3(workers=1, **kwargs)
        parallel = run_table3(workers=4, **kwargs)
        assert _strip_volatile(serial) == _strip_volatile(parallel)


def _shared_dot_point(*, seed):
    """Reads the sweep's shared workspace (attach path)."""
    import numpy as np

    from repro.experiments.runner import shared_workspace

    ws = shared_workspace()
    draws = RngStreams(seed).get("draw").random(ws["vec"].size)
    return float(np.dot(ws["vec"], draws)) + float(ws["mat"][seed % ws["mat"].shape[0]].sum())


def _private_dot_point(*, seed, vec, mat):
    """Same computation on per-point private copies (pickled kwargs)."""
    import numpy as np

    draws = RngStreams(seed).get("draw").random(vec.size)
    return float(np.dot(vec, draws)) + float(mat[seed % mat.shape[0]].sum())


class TestSharedWorkspace:
    """Workers attach one published workspace by manifest; results are
    bit-identical to points that carry private array copies."""

    def _arrays(self):
        import numpy as np

        gen = RngStreams(7).get("arrays")
        return {
            "vec": gen.random(4096),
            "mat": gen.random((64, 64)),
        }

    @pytest.mark.parametrize("backend", ["shared", "memmap"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_attach_matches_private_bitwise(self, backend, workers):
        from repro.experiments.runner import publish_arrays

        arrays = self._arrays()
        spec, owner = publish_arrays(arrays, backend=backend)
        try:
            shared = run_sweep(
                _points(_shared_dot_point, 5),
                workers=workers,
                workspace_spec=spec,
            )
        finally:
            owner.close()
        private = run_sweep(
            _points(_private_dot_point, 5, vec=arrays["vec"], mat=arrays["mat"]),
            workers=1,
        )
        assert shared.values() == private.values()  # bitwise: same float ops

    def test_serial_attach_is_scoped(self):
        from repro.experiments.runner import publish_arrays, shared_workspace

        spec, owner = publish_arrays(self._arrays(), backend="shared")
        try:
            run_sweep(_points(_shared_dot_point, 2), workers=1, workspace_spec=spec)
        finally:
            owner.close()
        assert dict(shared_workspace()) == {}

    def test_publish_rejects_private_backend(self):
        from repro.experiments.runner import publish_arrays

        with pytest.raises(ExperimentError, match="attachable"):
            publish_arrays(self._arrays(), backend="private")
