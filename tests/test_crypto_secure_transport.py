"""Authenticated transport: verified delivery, forgery rejection."""

import pytest

from repro.crypto.pkg import PrivateKeyGenerator
from repro.crypto.secure_transport import SecureTransport
from repro.network.transport import Transport
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    pkg = PrivateKeyGenerator(b"secure-transport-test-master-32b")
    secure = SecureTransport(Transport(sim, latency=1.0, rng=0), pkg)
    return sim, secure, pkg


class TestHonestPath:
    def test_payload_roundtrip(self, net):
        sim, secure, _pkg = net
        got = []
        secure.register(1, lambda m: got.append(m.payload))
        assert secure.send(0, 1, {"x": 0.5, "w": 1.0}) is True
        sim.run()
        assert got == [{"x": 0.5, "w": 1.0}]
        assert secure.verified == 1
        assert secure.rejected == 0

    def test_arbitrary_picklable_payloads(self, net):
        sim, secure, _pkg = net
        from repro.gossip.vector import TripletVector

        tv = TripletVector.initial(0, {1: 0.5}, {0: 1.0})
        got = []
        secure.register(2, lambda m: got.append(m.payload))
        secure.send(0, 2, tv)
        sim.run()
        assert len(got) == 1
        assert got[0].triplet(1).x == pytest.approx(0.5)  # s_01 * v_0 = 0.5 * 1.0

    def test_facade_properties(self, net):
        _sim, secure, _pkg = net
        assert secure.latency == 1.0
        assert secure.sent == 0
        assert secure.drop_count == 0
        assert secure.sim is not None


class TestAttacks:
    def test_forged_signature_rejected(self, net):
        sim, secure, _pkg = net
        got = []
        secure.register(1, lambda m: got.append(m.payload))
        accepted = secure.inject_forged(5, 1, "evil", forged_key=b"k" * 32)
        assert accepted  # the raw transport cannot tell
        sim.run()
        assert got == []  # the verification layer can
        assert secure.rejected == 1

    def test_src_spoofing_rejected(self, net):
        """A valid envelope from node 7 replayed with src=3 must drop."""
        sim, secure, pkg = net
        got = []
        secure.register(1, lambda m: got.append(m))
        # Node 7 signs legitimately...
        secure.send(7, 1, "hello")
        sim.run()
        assert len(got) == 1
        # ...an attacker grabs a 7-envelope and sends it claiming src=3.
        from repro.crypto.ibs import IdentitySigner

        env = IdentitySigner("node:7", pkg).sign(b"whatever")
        secure.transport.send(3, 1, env, kind="replayed")
        sim.run()
        assert len(got) == 1  # identity mismatch dropped
        assert secure.rejected == 1

    def test_non_envelope_payload_rejected(self, net):
        sim, secure, _pkg = net
        got = []
        secure.register(1, lambda m: got.append(m))
        secure.transport.send(0, 1, "raw unsigned bytes")
        sim.run()
        assert got == []
        assert secure.rejected == 1


class TestGossipIntegration:
    def test_message_engine_runs_over_secure_transport(self):
        import numpy as np

        from repro.gossip.message_engine import MessageGossipEngine
        from repro.network.overlay import Overlay
        from repro.network.topology import random_graph
        from repro.trust.matrix import TrustMatrix

        n = 12
        sim = Simulator()
        pkg = PrivateKeyGenerator(b"gossip-secure-master-32-bytes!!!")
        secure = SecureTransport(Transport(sim, latency=0.4, rng=1), pkg)
        overlay = Overlay(random_graph(n, avg_degree=4.0, rng=2), rng=3)
        engine = MessageGossipEngine(
            sim, secure, overlay, epsilon=1e-5, round_interval=1.0, rng=4
        )
        rng = np.random.default_rng(5)
        raw = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
        np.fill_diagonal(raw, 0)
        for i in range(n):
            if raw[i].sum() == 0:
                raw[i, (i + 1) % n] = 1.0
        S = TrustMatrix.from_dense_raw(raw)
        csr = S.sparse()
        rows = [
            dict(zip(csr.indices[csr.indptr[i]:csr.indptr[i+1]].tolist(),
                     csr.data[csr.indptr[i]:csr.indptr[i+1]].tolist()))
            for i in range(n)
        ]
        res = engine.run_cycle(rows, np.full(n, 1.0 / n))
        assert res.converged
        assert res.gossip_error < 1e-2
        assert secure.verified > 0
        assert secure.rejected == 0
