"""Smoke runs + shape assertions for the extension experiments."""

import pytest

from repro.experiments.registry import list_experiments, run_experiment


class TestQofExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("qof", quick=True)

    def test_reports_all_gammas(self, result):
        assert set(result.data) == {"0.2", "0.4"}

    def test_qof_helps_under_heavy_attack(self, result):
        row = result.data["0.4"]
        assert row["rms_qof"] < row["rms_plain"]

    def test_truth_judged_gap_positive(self, result):
        assert result.data["0.4"]["gap_vs_truth"] > 0


class TestObjectsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("objects", quick=True)

    def test_random_policy_hits_poison_base_rate(self, result):
        # 3 versions, 1 genuine: random downloads poisoned ~2/3.
        assert result.data["random/0.1"] == pytest.approx(2 / 3, abs=0.1)

    def test_object_reputation_defeats_poisoning_at_low_gamma(self, result):
        assert result.data["votes/0.1"] < 0.1
        assert result.data["weighted/0.1"] < 0.1

    def test_weighting_resists_vote_spam(self, result):
        # At 50% dishonest voters only the weighted variant stays low.
        assert result.data["weighted/0.5"] < result.data["votes/0.5"]
        assert result.data["weighted/0.5"] < 0.2


class TestStructuredExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("structured", quick=True)

    def test_structured_needs_fewer_rounds(self, result):
        for row in result.data.values():
            assert row["structured_rounds"] < row["gossip_steps"]

    def test_speedup_is_substantial(self, result):
        for row in result.data.values():
            assert row["gossip_steps"] / row["structured_rounds"] > 3


def test_extension_experiments_registered():
    ids = set(list_experiments())
    assert {"qof", "objects", "structured"} <= ids


class TestLoadExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("load", quick=True)

    def test_gini_definition(self):
        import numpy as np

        from repro.experiments.load_experiment import gini

        assert gini(np.array([1.0, 1.0, 1.0, 1.0])) == pytest.approx(0.0, abs=1e-9)
        assert gini(np.array([0.0, 0.0, 0.0, 10.0])) == pytest.approx(0.75)
        assert gini(np.zeros(4)) == 0.0

    def test_argmax_is_most_concentrated(self, result):
        ginis = {k: v["gini"] for k, v in result.data.items()}
        assert ginis["argmax"] >= max(
            g for k, g in ginis.items() if k != "argmax"
        ) - 1e-9

    def test_reports_all_policies(self, result):
        assert "notrust(s=0)" in result.data
        assert "argmax" in result.data
