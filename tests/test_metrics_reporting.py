"""Text tables and figure series rendering."""

import pytest

from repro.errors import ValidationError
from repro.metrics.reporting import Series, TextTable, percentile


class TestTextTable:
    def test_render_aligns_columns(self):
        t = TextTable(["name", "value"], title="demo")
        t.add_row(["alpha", 1])
        t.add_row(["a-very-long-name", 2.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines have equal column starts.
        assert lines[3].index("1") == lines[4].index("2.5")

    def test_float_formatting(self):
        t = TextTable(["x"], float_fmt=".2e")
        t.add_row([0.000123])
        assert "1.23e-04" in t.render()

    def test_row_arity_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValidationError):
            t.add_row([1])

    def test_row_count(self):
        t = TextTable(["a"])
        t.add_row([1])
        t.add_row([2])
        assert t.row_count == 2

    def test_needs_columns(self):
        with pytest.raises(ValidationError):
            TextTable([])

    def test_str_is_render(self):
        t = TextTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestSeries:
    def test_add_and_len(self):
        s = Series("curve")
        s.add(1, 2.0)
        s.add(2, 4.0)
        assert len(s) == 2
        assert s.x == [1.0, 2.0]
        assert s.y == [2.0, 4.0]

    def test_render(self):
        s = Series("n=1000")
        s.add(0.01, 29)
        out = s.render()
        assert out.startswith("n=1000:")
        assert "(0.01, 29)" in out

    def test_mismatched_init_rejected(self):
        with pytest.raises(ValidationError):
            Series("bad", x=[1.0], y=[])


class TestPercentile:
    def test_interpolation_matches_numpy_default(self):
        import numpy as np

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 90) == 7.0
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValidationError):
            percentile([1.0], 101)
        with pytest.raises(ValidationError):
            percentile([1.0], -1)
