"""Cross-module integration: engines agree, system matches oracle, e2e runs."""

import numpy as np

from repro.baselines.centralized import CentralizedEigenvector
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.message_engine import MessageGossipEngine
from repro.metrics.errors import kendall_tau, rank_overlap
from repro.network.churn import ChurnModel
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like, random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams


class TestEngineAgreement:
    """The two gossip engines implement one protocol; they must agree."""

    def test_vectorized_and_message_engines_agree(self):
        n = 20
        streams = RngStreams(11)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        v = np.full(n, 1.0 / n)

        vec_engine = SynchronousGossipEngine(
            n, epsilon=1e-7, mode="full", rng=streams.get("vec")
        )
        vec_res = vec_engine.run_cycle(S, v)

        sim = Simulator()
        overlay = Overlay(random_graph(n, rng=streams.get("topo")), rng=streams.get("ov"))
        transport = Transport(sim, latency=0.4, rng=streams.get("net"))
        msg_engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-7, round_interval=1.0,
            rng=streams.get("msg"),
        )
        msg_res = msg_engine.run_cycle(S, v)  # engines take the matrix natively

        # Both approximate the same exact product.
        assert np.allclose(vec_res.exact, msg_res.exact, atol=1e-12)
        assert np.allclose(vec_res.v_next, msg_res.v_next, rtol=5e-2, atol=1e-5)


class TestSystemVsOracle:
    def test_gossiptrust_ranking_matches_eigenvector(self):
        n = 100
        streams = RngStreams(3)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        cfg = GossipTrustConfig(n=n, alpha=0.0, seed=3)
        result = GossipTrust(S, cfg, rng=streams.get("sys")).run()
        oracle = CentralizedEigenvector(S).compute()
        assert kendall_tau(oracle, result.vector) > 0.95
        assert rank_overlap(oracle, result.vector, 10) >= 0.9

    def test_paper_cycle_counts_ballpark(self):
        # Table 3 at (1e-4, 1e-3): paper reports 15 cycles / 28 steps.
        # Same order of magnitude expected on our synthetic matrices.
        n = 300
        streams = RngStreams(5)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        cfg = GossipTrustConfig(
            n=n, alpha=0.15, epsilon=1e-4, delta=1e-3, engine_mode="probe", seed=5
        )
        result = GossipTrust(S, cfg, rng=streams.get("sys")).run()
        assert 3 <= result.cycles <= 40
        mean_steps = result.total_gossip_steps / result.cycles
        assert 10 <= mean_steps <= 120


class TestChurnIntegration:
    def test_gossip_cycle_survives_active_churn(self):
        n = 40
        streams = RngStreams(7)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        sim = Simulator()
        overlay = Overlay(
            gnutella_like(n, rng=streams.get("topo")), rng=streams.get("ov")
        )
        transport = Transport(sim, latency=0.4, rng=streams.get("net"))
        churn = ChurnModel(
            sim, overlay, mean_session=40.0, mean_offline=15.0, min_alive=20,
            rng=streams.get("churn"),
        )
        churn.start()
        engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-4, round_interval=1.0,
            max_rounds=200, rng=streams.get("msg"),
        )
        res = engine.run_cycle(S, np.full(n, 1.0 / n))
        assert np.all(np.isfinite(res.v_next))
        # Gossip still lands in the neighborhood of the exact product.
        live = res.live_nodes
        err = np.abs(res.v_next[live] - res.exact[live]).sum()
        assert err < 0.5


class TestStorageIntegration:
    def test_bloom_store_roundtrip_of_real_reputation(self):
        from repro.storage.reputation_store import BloomReputationStore

        n = 150
        streams = RngStreams(9)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        v = CentralizedEigenvector(S).compute()
        store = BloomReputationStore(bracket_bits=8)
        store.build(v)
        approx = store.lookup_vector(n)
        assert kendall_tau(v, approx) > 0.8


class TestCryptoIntegration:
    def test_signed_gossip_payload_roundtrip(self):
        """Gossip payloads can be signed per-identity and verified."""
        import pickle

        from repro.crypto.ibs import IdentitySigner, verify_envelope
        from repro.crypto.pkg import PrivateKeyGenerator
        from repro.gossip.vector import TripletVector

        pkg = PrivateKeyGenerator(b"gossip-master-secret-32-bytes!!!")
        tv = TripletVector.initial(3, {1: 0.5, 2: 0.5}, {3: 0.25})
        payload = pickle.dumps(sorted((t.node, t.x, t.w) for t in tv))
        env = IdentitySigner("node:3", pkg).sign(payload)
        assert verify_envelope(env, pkg)
        restored = pickle.loads(env.payload)
        assert restored[0][0] == 1
