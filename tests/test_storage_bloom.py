"""Bloom filters: no false negatives, bounded false positives, algebra."""

import numpy as np
import pytest

from repro.errors import BloomCapacityError, ValidationError
from repro.storage.bloom import BloomFilter, CountingBloomFilter, optimal_parameters


class TestParameters:
    def test_formulas(self):
        m, k = optimal_parameters(1000, 0.01)
        assert 9000 < m < 10100  # ~9.6 bits per item at 1% FP
        assert k in (6, 7)

    def test_lower_error_means_more_bits(self):
        m1, _ = optimal_parameters(1000, 0.01)
        m2, _ = optimal_parameters(1000, 0.0001)
        assert m2 > 1.5 * m1

    def test_validation(self):
        with pytest.raises(ValidationError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValidationError):
            optimal_parameters(10, 1.5)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(500, 0.01)
        items = [f"item-{i}" for i in range(500)]
        bf.update(items)
        assert all(item in bf for item in items)

    def test_false_positive_rate_bounded(self):
        bf = BloomFilter(1000, 0.01)
        bf.update(range(1000))
        fp = sum(x in bf for x in range(10_000, 30_000)) / 20_000
        assert fp < 0.03

    def test_capacity_enforced(self):
        bf = BloomFilter(3)
        bf.update([1, 2, 3])
        with pytest.raises(BloomCapacityError):
            bf.add(4)

    def test_empty_contains_nothing(self):
        bf = BloomFilter(10)
        assert 42 not in bf

    def test_union_covers_both_sets(self):
        a = BloomFilter(100, 0.01)
        b = BloomFilter(100, 0.01)
        a.update(range(50))
        b.update(range(100, 150))
        u = a.union(b)
        assert all(x in u for x in range(50))
        assert all(x in u for x in range(100, 150))

    def test_union_requires_compatible_parameters(self):
        with pytest.raises(ValidationError):
            BloomFilter(100).union(BloomFilter(200))

    def test_estimated_fp_rate_grows_with_load(self):
        bf = BloomFilter(100, 0.01)
        empty = bf.estimated_false_positive_rate()
        bf.update(range(100))
        assert bf.estimated_false_positive_rate() > empty

    def test_size_bytes(self):
        bf = BloomFilter(1000, 0.01)
        assert bf.size_bytes == (bf.m + 7) // 8

    def test_deterministic_hashing(self):
        a = BloomFilter(10)
        b = BloomFilter(10)
        a.add("x")
        b.add("x")
        assert np.array_equal(a._bits, b._bits)


class TestCountingBloomFilter:
    def test_add_remove_roundtrip(self):
        cbf = CountingBloomFilter(100)
        cbf.add("a")
        cbf.add("b")
        assert "a" in cbf
        cbf.remove("a")
        assert "a" not in cbf
        assert "b" in cbf

    def test_duplicate_adds_need_matching_removes(self):
        cbf = CountingBloomFilter(100)
        cbf.add("x")
        cbf.add("x")
        cbf.remove("x")
        assert "x" in cbf
        cbf.remove("x")
        assert "x" not in cbf

    def test_remove_never_added_rejected(self):
        cbf = CountingBloomFilter(10)
        with pytest.raises(ValidationError):
            cbf.remove("ghost")

    def test_capacity_enforced(self):
        cbf = CountingBloomFilter(2)
        cbf.add(1)
        cbf.add(2)
        with pytest.raises(BloomCapacityError):
            cbf.add(3)

    def test_no_false_negatives(self):
        cbf = CountingBloomFilter(300)
        for i in range(300):
            cbf.add(i)
        assert all(i in cbf for i in range(300))

    def test_size_accounting(self):
        cbf = CountingBloomFilter(100)
        assert cbf.size_bytes == 2 * cbf.m
