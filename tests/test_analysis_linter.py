"""Fixture self-tests for the GT lint framework and every rule.

Each rule is exercised both ways: a violating snippet must fire, a
compliant one must stay silent.  Fixtures are linted as in-memory
:class:`~repro.analysis.linter.SourceFile` objects with fake paths, so
the path-scoping logic is covered by the same tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.linter import (
    PARSE_ERROR_CODE,
    Rule,
    SourceFile,
    Violation,
    lint_paths,
    lint_sources,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.gt001_rng import NoAdHocRngRule
from repro.analysis.rules.gt002_alloc import NoHotAllocRule, hot_regions
from repro.analysis.rules.gt003_wallclock import NoWallClockRule
from repro.analysis.rules.gt004_floateq import NoBareFloatEqRule

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "analyze.py"


def lint_snippet(rule: Rule, text: str, path: str = "src/repro/gossip/mod.py"):
    return lint_sources([SourceFile(path, text)], [rule])


# -- framework ---------------------------------------------------------------


class TestFramework:
    def test_violation_text_format(self):
        v = Violation(rule="GT001", path="a.py", line=3, col=7, message="msg")
        assert v.format("text") == "a.py:3:7: GT001 msg"

    def test_violation_github_format(self):
        v = Violation(rule="GT003", path="src/x.py", line=12, col=1, message="m")
        assert v.format("github") == (
            "::error file=src/x.py,line=12,col=1,title=GT003::m"
        )

    def test_noqa_bare_suppresses_all(self):
        src = SourceFile("src/repro/gossip/m.py", "import random  # noqa\n")
        assert lint_sources([src], [NoAdHocRngRule()]) == []

    def test_noqa_with_code_suppresses_that_rule(self):
        src = SourceFile(
            "src/repro/gossip/m.py", "import random  # noqa: GT001\n"
        )
        assert lint_sources([src], [NoAdHocRngRule()]) == []

    def test_noqa_with_other_code_does_not_suppress(self):
        src = SourceFile(
            "src/repro/gossip/m.py", "import random  # noqa: GT004\n"
        )
        assert len(lint_sources([src], [NoAdHocRngRule()])) == 1

    def test_include_scoping(self):
        rule = NoWallClockRule()
        bad = "import time\nt = time.time()\n"
        assert lint_snippet(rule, bad, path="src/repro/gossip/engine2.py")
        # The service/experiment layers are in scope since the GT003
        # extension; the metrics layer (home of Stopwatch) is not.
        assert lint_snippet(rule, bad, path="src/repro/experiments/x.py")
        assert not lint_snippet(rule, bad, path="src/repro/metrics/reporting2.py")

    def test_exclude_scoping(self):
        rule = NoWallClockRule()
        bad = "import time\nt = time.perf_counter()\n"
        assert not lint_snippet(rule, bad, path="src/repro/metrics/telemetry.py")
        assert not lint_snippet(rule, bad, path="src/repro/utils/proc.py")

    def test_lint_paths_reports_parse_errors(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        violations = lint_paths([str(tmp_path)], list(ALL_RULES))
        assert [v.rule for v in violations] == [PARSE_ERROR_CODE]

    def test_lint_paths_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import random\n")
        assert lint_paths([str(tmp_path)], list(ALL_RULES)) == []

    def test_all_rules_catalog(self):
        codes = [r.code for r in ALL_RULES]
        assert codes == [
            "GT001", "GT002", "GT003", "GT004", "GT005",
            "GT006", "GT007", "GT008", "GT009",
        ]
        assert len(set(codes)) == len(codes)
        assert all(r.summary for r in ALL_RULES)


# -- GT001: no ad-hoc RNG ----------------------------------------------------


class TestGT001:
    rule = NoAdHocRngRule()

    def test_fires_on_default_rng(self):
        vs = lint_snippet(self.rule, "import numpy as np\nr = np.random.default_rng(0)\n")
        assert [v.rule for v in vs] == ["GT001"]
        assert "default_rng" in vs[0].message

    def test_fires_on_stdlib_random_import(self):
        vs = lint_snippet(self.rule, "import random\n")
        assert [v.rule for v in vs] == ["GT001"]

    def test_fires_on_from_numpy_random_import(self):
        vs = lint_snippet(self.rule, "from numpy.random import default_rng\n")
        assert [v.rule for v in vs] == ["GT001"]

    def test_fires_on_legacy_global_state(self):
        vs = lint_snippet(self.rule, "import numpy as np\nv = np.random.rand(3)\n")
        assert [v.rule for v in vs] == ["GT001"]

    def test_silent_on_utils_rng(self):
        text = "from repro.utils.rng import as_generator\nrng = as_generator(7)\n"
        assert lint_snippet(self.rule, text) == []

    def test_silent_on_generator_annotation(self):
        # Type annotations mention np.random.Generator without drawing.
        text = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> None:\n"
            "    rng.random(3)\n"
        )
        assert lint_snippet(self.rule, text) == []

    def test_exempt_inside_utils_rng_itself(self):
        text = "import numpy as np\ng = np.random.default_rng(0)\n"
        assert not lint_snippet(self.rule, text, path="src/repro/utils/rng.py")

    def test_exempt_in_tests(self):
        text = "import numpy as np\ng = np.random.default_rng(0)\n"
        assert not lint_snippet(self.rule, text, path="tests/test_x.py")


# -- GT002: no allocations in hot regions ------------------------------------


HOT_LOOP_BAD = """\
import numpy as np

def kernel(X, n):
    # hot: step loop
    for _ in range(n):
        buf = np.zeros(n)
        Y = X.copy()
    return X
"""

HOT_LOOP_GOOD = """\
import numpy as np

def kernel(X, scratch, n):
    # hot: step loop
    for _ in range(n):
        np.multiply(X, 0.5, out=scratch)
        X, scratch = scratch, X
    return X
"""


class TestGT002:
    rule = NoHotAllocRule()

    def test_fires_on_alloc_and_copy_in_hot_region(self):
        vs = lint_snippet(self.rule, HOT_LOOP_BAD)
        messages = sorted(v.message for v in vs)
        assert len(vs) == 2
        assert any("np.zeros" in m for m in messages)
        assert any(".copy()" in m for m in messages)

    def test_silent_on_clean_hot_region(self):
        assert lint_snippet(self.rule, HOT_LOOP_GOOD) == []

    def test_silent_without_marker(self):
        text = "import numpy as np\n\ndef f(n):\n    return np.zeros(n)\n"
        assert lint_snippet(self.rule, text) == []

    def test_allocations_outside_marked_region_pass(self):
        text = (
            "import numpy as np\n"
            "def setup(n):\n"
            "    buf = np.empty(n)\n"  # before the marked loop: fine
            "    # hot: loop\n"
            "    for _ in range(n):\n"
            "        buf[:] = 0.0\n"
            "    return buf\n"
        )
        assert lint_snippet(self.rule, text) == []

    def test_trailing_marker_form(self):
        text = (
            "import numpy as np\n"
            "def f(X, n):\n"
            "    while n:  # hot: step loop\n"
            "        Y = X.copy()\n"
            "        n -= 1\n"
        )
        vs = lint_snippet(self.rule, text)
        assert [v.rule for v in vs] == ["GT002"]

    def test_marker_above_binds_to_loop_not_function(self):
        # The enclosing function allocates before the marker; only the
        # marked loop is the hot region.
        src = SourceFile("src/repro/gossip/m.py", HOT_LOOP_GOOD)
        regions = hot_regions(src)
        assert len(regions) == 1
        assert type(regions[0]).__name__ == "For"

    def test_copy_with_arguments_is_not_flagged(self):
        # Only zero-arg .copy() (array duplication) is banned.
        text = (
            "def f(items, n):\n"
            "    # hot: loop\n"
            "    for _ in range(n):\n"
            "        items.copy(deep=False)\n"
        )
        assert lint_snippet(self.rule, text) == []

    def test_repo_hot_regions_are_clean(self):
        # Minimum marker counts pin the kernels' coverage: engine.py
        # carries the fast kernel's step loop plus the sparse kernel's
        # regions (step loop, mixing fill, SpGEMM, dense SpMM step,
        # tile gather/load, blocked check); shard_exec.py the worker's
        # mixing fill and shard advance; vector.py its two merge/fill
        # loops.
        for rel, floor in (
            ("src/repro/gossip/engine.py", 8),
            ("src/repro/gossip/shard_exec.py", 2),
            ("src/repro/gossip/vector.py", 2),
        ):
            src = SourceFile.read(str(REPO / rel))
            regions = hot_regions(src)
            assert len(regions) >= floor, (
                f"{rel} lost # hot: markers ({len(regions)} < {floor})"
            )
            assert lint_sources([src], [self.rule]) == []


# -- GT003: no wall clock in the deterministic core --------------------------


class TestGT003:
    rule = NoWallClockRule()

    @pytest.mark.parametrize(
        "expr",
        ["time.time()", "time.perf_counter()", "time.monotonic()",
         "time.process_time()"],
    )
    def test_fires_on_time_calls(self, expr):
        vs = lint_snippet(self.rule, f"import time\nt = {expr}\n")
        assert [v.rule for v in vs] == ["GT003"]

    def test_fires_on_bare_reference(self):
        # Passing time.time as a callback is just as non-deterministic.
        vs = lint_snippet(self.rule, "import time\nclock = time.time\n")
        assert [v.rule for v in vs] == ["GT003"]

    def test_fires_on_datetime_now(self):
        vs = lint_snippet(
            self.rule, "import datetime\nt = datetime.datetime.now()\n"
        )
        assert vs and all(v.rule == "GT003" for v in vs)

    def test_fires_on_from_import(self):
        vs = lint_snippet(
            self.rule, "from time import perf_counter\nt = perf_counter()\n"
        )
        assert len(vs) == 2  # the import and the call

    def test_silent_on_time_sleep(self):
        assert lint_snippet(self.rule, "import time\ntime.sleep(0)\n") == []

    def test_silent_on_simulated_time(self):
        text = "def f(sim):\n    return sim.now\n"
        assert lint_snippet(self.rule, text, path="src/repro/sim/engine.py") == []


# -- GT004: no bare float equality -------------------------------------------


class TestGT004:
    rule = NoBareFloatEqRule()

    @pytest.mark.parametrize("expr", ["x == 0.5", "x != 1e-4", "0.0 == x",
                                      "x == -0.25"])
    def test_fires_on_float_literal_comparison(self, expr):
        vs = lint_snippet(self.rule, f"def f(x):\n    return {expr}\n")
        assert [v.rule for v in vs] == ["GT004"]

    def test_silent_on_integer_comparison(self):
        assert lint_snippet(self.rule, "def f(n):\n    return n == 0\n") == []

    def test_silent_on_threshold_comparison(self):
        assert lint_snippet(self.rule, "def f(x):\n    return x <= 1e-4\n") == []

    def test_silent_on_isclose(self):
        text = "import numpy as np\ndef f(x):\n    return np.isclose(x, 0.5)\n"
        assert lint_snippet(self.rule, text) == []

    def test_chained_comparison_checks_each_pair(self):
        vs = lint_snippet(self.rule, "def f(a, b):\n    return a == b == 0.5\n")
        assert len(vs) == 1

    def test_out_of_scope_module_passes(self):
        text = "def f(x):\n    return x == 0.5\n"
        assert not lint_snippet(self.rule, text, path="src/repro/network/dht.py")


# -- the repository gate and the CLI ----------------------------------------


class TestRepositoryAndCli:
    def test_repo_tree_is_clean(self):
        violations = lint_paths(
            [str(REPO / "src"), str(REPO / "tests"), str(REPO / "examples"),
             str(REPO / "tools")],
            list(ALL_RULES),
        )
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_cli_clean_exit(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, str(TOOL), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_cli_violation_exit_and_github_format(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "gossip" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--format=github", str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert proc.stdout.startswith("::error ")
        assert "title=GT001" in proc.stdout

    def test_cli_select_subset(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "gossip" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--select", "GT003", str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0  # GT001 deselected

    def test_cli_unknown_rule_is_usage_error(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--select", "GT999", "src"],
            capture_output=True, text=True, cwd=str(REPO),
        )
        assert proc.returncode == 2

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--list-rules"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        for code in ("GT001", "GT002", "GT003", "GT004", "GT005",
                     "GT006", "GT007", "GT008", "GT009"):
            assert code in proc.stdout
