"""Error/ranking metrics, including the paper's Eq. 8."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.metrics.errors import (
    kendall_tau,
    l1_error,
    linf_error,
    rank_overlap,
    rms_relative_error,
)


class TestRmsRelativeError:
    def test_zero_for_identical(self):
        v = np.array([0.2, 0.8])
        assert rms_relative_error(v, v) == 0.0

    def test_eq8_hand_computed(self):
        v = np.array([0.5, 0.5])
        u = np.array([0.4, 0.6])
        # rel errors: 0.2 and -0.2 -> RMS = 0.2
        assert rms_relative_error(v, u) == pytest.approx(0.2)

    def test_zero_reference_components_excluded(self):
        v = np.array([0.0, 1.0])
        u = np.array([5.0, 1.1])
        # Component 0 has no defined relative error; only 10% counts.
        assert rms_relative_error(v, u) == pytest.approx(0.1)

    def test_all_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            rms_relative_error(np.zeros(3), np.ones(3))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            rms_relative_error(np.ones(2), np.ones(3))

    def test_sensitive_to_small_score_errors(self):
        # Equal absolute error hurts a small score more — Eq. 8 is relative.
        v = np.array([0.9, 0.1])
        u_small_hit = np.array([0.9, 0.2])
        u_big_hit = np.array([1.0, 0.1])
        assert rms_relative_error(v, u_small_hit) > rms_relative_error(v, u_big_hit)


class TestVectorDistances:
    def test_l1(self):
        assert l1_error(np.array([0.5, 0.5]), np.array([0.4, 0.6])) == pytest.approx(0.2)

    def test_linf(self):
        assert linf_error(np.array([0.5, 0.5]), np.array([0.4, 0.65])) == pytest.approx(0.15)


class TestRanking:
    def test_kendall_tau_perfect_and_inverted(self):
        v = np.array([0.1, 0.2, 0.3, 0.4])
        assert kendall_tau(v, v) == pytest.approx(1.0)
        assert kendall_tau(v, v[::-1].copy() * 0 + np.array([0.4, 0.3, 0.2, 0.1])) == pytest.approx(-1.0)

    def test_rank_overlap_full_and_none(self):
        v = np.array([0.4, 0.3, 0.2, 0.1])
        assert rank_overlap(v, v, 2) == 1.0
        u = np.array([0.1, 0.2, 0.3, 0.4])
        assert rank_overlap(v, u, 2) == 0.0

    def test_rank_overlap_partial(self):
        v = np.array([0.4, 0.3, 0.2, 0.1])
        u = np.array([0.4, 0.1, 0.3, 0.2])
        assert rank_overlap(v, u, 2) == 0.5

    def test_rank_overlap_k_validation(self):
        v = np.ones(3)
        with pytest.raises(ValidationError):
            rank_overlap(v, v, 0)
        with pytest.raises(ValidationError):
            rank_overlap(v, v, 4)
