"""Smoke tests: the shipped examples must run and print their headline.

Only the lighter examples run here (the heavy ones are exercised by
their underlying experiments); each is executed in-process with its
module namespace isolated.
"""

import pathlib
import runpy

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "converged in" in out
    assert "rank" in out
    assert "L1 distance" in out


def test_collusion_attack(capsys):
    out = run_example("collusion_attack.py", capsys)
    assert "group size" in out
    assert "power-node leverage" in out


def test_churn_and_faults(capsys):
    out = run_example("churn_and_faults.py", capsys)
    assert "fault-free" in out
    assert "gossip_error" in out
