"""Process resource metrics (:mod:`repro.utils.proc`).

The per-interval :class:`PeakRssMeter` is what makes per-entry memory
budgets in the benchmark trajectory meaningful: the lifetime
``ru_maxrss`` reading is monotone, so without high-water-mark resets
every entry after the largest one inherits its peak.
"""

import numpy as np

from repro.utils.proc import (
    PeakRssMeter,
    current_rss_kib,
    peak_rss_kib,
    reset_peak_rss,
)


class TestLifetimeReaders:
    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kib() > 0.0

    def test_current_rss_positive_on_linux(self):
        rss = current_rss_kib()
        if rss == 0.0:  # no procfs on this platform: "unknown" contract
            return
        assert rss > 1024.0  # a live python process is way past 1 MiB

    def test_current_at_most_interval_peak(self):
        meter = PeakRssMeter()
        if not meter.exact:
            return
        assert current_rss_kib() <= meter.read_kib() + 1024.0


class TestPeakRssMeter:
    def test_meter_reports_interval_allocation(self):
        """A large allocation inside the interval must register; after a
        restart the next interval must NOT inherit it."""
        meter = PeakRssMeter()
        if not meter.exact:  # platform without /proc/self/clear_refs
            assert meter.read_kib() == peak_rss_kib()
            return
        baseline = meter.read_kib()
        ballast_kib = 64 * 1024
        ballast = np.ones(ballast_kib * 1024 // 8)  # touch every page
        peak_with_ballast = meter.read_kib()
        assert peak_with_ballast >= baseline + 0.8 * ballast_kib
        del ballast
        meter.restart()
        assert meter.read_kib() < peak_with_ballast

    def test_read_is_repeatable(self):
        meter = PeakRssMeter()
        first = meter.read_kib()
        second = meter.read_kib()
        assert second >= first > 0.0

    def test_reset_returns_bool(self):
        assert reset_peak_rss() in (True, False)
