"""Validation helper contracts."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_square_matrix,
    check_stochastic_rows,
    check_vector,
)


class TestScalars:
    def test_check_positive_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", 0.0)

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_non_negative(self):
        assert check_non_negative("y", 0.0) == 0.0
        with pytest.raises(ValidationError):
            check_non_negative("y", -1e-9)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValidationError):
            check_probability("p", 1.0001)
        with pytest.raises(ValidationError):
            check_probability("p", -0.1)

    def test_check_in_range_inclusive_and_exclusive(self):
        assert check_in_range("v", 1.0, low=1.0) == 1.0
        with pytest.raises(ValidationError):
            check_in_range("v", 1.0, low=1.0, low_inclusive=False)
        assert check_in_range("v", 2.0, high=2.0) == 2.0
        with pytest.raises(ValidationError):
            check_in_range("v", 2.0, high=2.0, high_inclusive=False)

    def test_check_in_range_message_names_param(self):
        with pytest.raises(ValidationError, match="epsilon"):
            check_in_range("epsilon", -1.0, low=0.0)


class TestArrays:
    def test_check_vector_shape_and_size(self):
        v = check_vector("v", [1.0, 2.0], size=2)
        assert v.dtype == np.float64
        with pytest.raises(ValidationError):
            check_vector("v", [1.0, 2.0], size=3)
        with pytest.raises(ValidationError):
            check_vector("v", np.ones((2, 2)))

    def test_check_vector_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_vector("v", [1.0, float("nan")])

    def test_check_square_matrix(self):
        m = check_square_matrix("m", np.eye(3))
        assert m.shape == (3, 3)
        with pytest.raises(ValidationError):
            check_square_matrix("m", np.ones((2, 3)))
        with pytest.raises(ValidationError):
            check_square_matrix("m", np.full((2, 2), np.inf))

    def test_check_stochastic_rows_accepts_stochastic(self):
        m = np.array([[0.5, 0.5], [0.25, 0.75]])
        assert check_stochastic_rows("m", m) is not None

    def test_check_stochastic_rows_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_stochastic_rows("m", np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_check_stochastic_rows_rejects_out_of_range_entries(self):
        m = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValidationError):
            check_stochastic_rows("m", m)
