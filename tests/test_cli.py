"""CLI: parsing, overrides, end-to-end runs."""

import pytest

from repro.cli import build_parser, main, parse_override


class TestParseOverride:
    def test_int(self):
        assert parse_override("n=500") == ("n", 500)

    def test_float(self):
        assert parse_override("delta=1e-3") == ("delta", 1e-3)

    def test_tuple(self):
        assert parse_override("gammas=0.0,0.2") == ("gammas", (0.0, 0.2))

    def test_mixed_tuple(self):
        assert parse_override("sizes=100,200") == ("sizes", (100, 200))

    def test_trailing_comma_makes_one_tuple(self):
        assert parse_override("bracket_bits=4,") == ("bracket_bits", (4,))

    def test_string_fallback(self):
        assert parse_override("engine_mode=probe") == ("engine_mode", "probe")

    def test_missing_equals_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_override("n500")


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"
        args = parser.parse_args(["run", "fig3", "--quick"])
        assert args.experiment == "fig3"
        assert args.quick

    def test_set_collects_overrides(self):
        args = build_parser().parse_args(
            ["run", "table3", "--set", "n=100", "--set", "repeats=1"]
        )
        assert dict(args.overrides) == {"n": 100, "repeats": 1}

    def test_kernel_and_dtype_flags(self):
        args = build_parser().parse_args(
            ["run", "fig3", "--kernel", "sparse", "--dtype", "float32"]
        )
        assert args.kernel == "sparse"
        assert args.dtype == "float32"

    def test_kernel_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--kernel", "warp"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--dtype", "float16"])


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "0.2" in out

    def test_run_with_overrides(self, capsys):
        code = main(
            ["run", "storage", "--quick", "--set", "bracket_bits=4,", "--set", "n=120"]
        )
        assert code == 0
        assert "Bloom" in capsys.readouterr().out

    def test_run_fig3_sparse_kernel(self, capsys):
        """--kernel/--dtype forward into the experiment as overrides."""
        code = main(["run", "fig3", "--quick", "--kernel", "sparse"])
        assert code == 0
        assert capsys.readouterr().out
