"""The full GossipTrust system."""

import numpy as np
import pytest

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.errors import ConvergenceError, ValidationError
from repro.gossip.message_engine import MessageGossipEngine
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator


class TestRun:
    def test_converges_and_matches_exact_reference(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15, seed=0)
        result = GossipTrust(random_S, cfg).run()
        assert result.converged
        assert result.aggregation_error < 1e-3
        assert result.vector.sum() == pytest.approx(1.0)

    def test_alpha_zero_matches_eigenvector(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0, seed=1)
        result = GossipTrust(random_S, cfg).run()
        ref = result.exact_reference.vector
        assert np.allclose(result.vector, ref, rtol=5e-2, atol=1e-5)

    def test_power_nodes_selected_for_next_round(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15, seed=2)
        system = GossipTrust(random_S, cfg)
        assert system.power_nodes == frozenset()
        result = system.run()
        assert len(result.power_nodes) == cfg.max_power_nodes
        assert system.power_nodes == result.power_nodes  # installed

    def test_successive_rounds_stabilize_power_nodes(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15, seed=3)
        system = GossipTrust(random_S, cfg)
        first = system.run().power_nodes
        second = system.run().power_nodes
        third = system.run().power_nodes
        assert second == third  # fixed matrix -> selection settles

    def test_steps_per_cycle_reported(self, random_S):
        result = GossipTrust(
            random_S, GossipTrustConfig(n=random_S.n, seed=4)
        ).run()
        assert len(result.steps_per_cycle) == result.cycles
        assert result.total_gossip_steps == sum(result.steps_per_cycle)
        assert all(s > 0 for s in result.steps_per_cycle)

    def test_reputation_view(self, random_S):
        result = GossipTrust(
            random_S, GossipTrustConfig(n=random_S.n, seed=5)
        ).run()
        rep = result.reputation()
        assert rep.total() == pytest.approx(1.0)
        assert rep.top(1)[0] == int(np.argmax(result.vector))

    def test_budget_raises(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, delta=1e-15, max_cycles=2, seed=6)
        with pytest.raises(ConvergenceError):
            GossipTrust(random_S, cfg).run()

    def test_deterministic_given_seed(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=7)
        a = GossipTrust(random_S, cfg).run()
        b = GossipTrust(random_S, cfg).run()
        assert np.array_equal(a.vector, b.vector)
        assert a.cycles == b.cycles


class TestConstruction:
    def test_config_mismatch_rejected(self, random_S):
        with pytest.raises(ValidationError):
            GossipTrust(random_S, GossipTrustConfig(n=random_S.n + 1))

    def test_accepts_raw_stochastic_array(self):
        S = np.array([[0.0, 1.0], [1.0, 0.0]])
        system = GossipTrust(S, GossipTrustConfig(n=2, alpha=0.0, seed=0))
        result = system.run(raise_on_budget=False)
        assert result.vector.shape == (2,)

    def test_set_power_nodes(self, random_S):
        system = GossipTrust(random_S, GossipTrustConfig(n=random_S.n, seed=0))
        system.set_power_nodes(frozenset({1, 2}))
        assert system.power_nodes == frozenset({1, 2})


class TestMessageEngineIntegration:
    def test_full_system_on_message_engine(self):
        n = 16
        rng = np.random.default_rng(3)
        raw = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
        np.fill_diagonal(raw, 0)
        for i in range(n):
            if raw[i].sum() == 0:
                raw[i, (i + 1) % n] = 1.0
        from repro.trust.matrix import TrustMatrix

        S = TrustMatrix.from_dense_raw(raw)
        sim = Simulator()
        overlay = Overlay(random_graph(n, rng=0), rng=1)
        transport = Transport(sim, latency=0.5, rng=2)
        msg_engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-5, round_interval=1.0, rng=3
        )
        cfg = GossipTrustConfig(n=n, alpha=0.15, delta=1e-2, seed=4)
        system = GossipTrust(S, cfg, engine=msg_engine)
        result = system.run(raise_on_budget=False)
        assert result.aggregation_error < 0.05
        assert result.cycle_results[0].mode == "message"


class TestMassLossGuard:
    """A cycle that destroys all reputation mass must fail loudly."""

    class _ZeroMassEngine:
        """Fake engine whose cycle returns an all-zero vector."""

        name = "zero"

        def run_cycle(self, S, v):
            from repro.gossip.base import GossipCycleResult

            n = v.shape[0]
            return GossipCycleResult(
                v_next=np.zeros(n),
                exact=np.zeros(n),
                steps=1,
                gossip_error=0.0,
                converged=True,
                mode="zero",
            )

    def test_zero_mass_cycle_raises_with_cycle_number(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0, seed=0)
        system = GossipTrust(random_S, cfg, engine=self._ZeroMassEngine())
        with pytest.raises(ConvergenceError) as excinfo:
            system.run(raise_on_budget=False)
        assert "cycle 1" in str(excinfo.value)

    def test_healthy_run_unaffected(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15, seed=0)
        result = GossipTrust(random_S, cfg).run(raise_on_budget=False)
        assert result.vector.sum() == pytest.approx(1.0)


class TestWarmStart:
    def test_cold_run_is_unversioned(self, random_S):
        result = GossipTrust(
            random_S, GossipTrustConfig(n=random_S.n, seed=0)
        ).run()
        assert result.epoch == 0
        assert result.warm_started is False

    def test_epoch_stamp_carried_through(self, random_S):
        result = GossipTrust(
            random_S, GossipTrustConfig(n=random_S.n, seed=0)
        ).run(epoch=7)
        assert result.epoch == 7

    def test_v0_is_normalized_internally(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=1, compute_reference=False)
        unnormalized = np.full(random_S.n, 5.0)  # sums to 5n, not 1
        result = GossipTrust(random_S, cfg).run(v0=unnormalized)
        assert result.warm_started is True
        assert result.vector.sum() == pytest.approx(1.0)

    def test_uniform_v0_matches_cold_start(self, random_S):
        # Warm-starting from the uniform vector is exactly the cold path.
        cfg = GossipTrustConfig(n=random_S.n, seed=2)
        cold = GossipTrust(random_S, cfg).run()
        warm = GossipTrust(random_S, cfg).run(
            v0=np.full(random_S.n, 1.0 / random_S.n)
        )
        assert np.array_equal(cold.vector, warm.vector)
        assert cold.cycles == warm.cycles

    def test_warm_start_from_converged_vector_is_faster(self, random_S):
        # Warm-start pays off only once the power-node set is stable:
        # each run re-selects the set, and a changed set moves the
        # fixed point of the mixed operator.  So stabilize first (a
        # fixed matrix settles the selection — see
        # test_successive_rounds_stabilize_power_nodes), then compare
        # warm vs cold on the identical matrix AND power-node set.
        cfg = GossipTrustConfig(n=random_S.n, seed=3, compute_reference=False)
        system = GossipTrust(random_S, cfg)
        system.run()  # round 1 installs the first selected set
        stable = system.run()  # round 2 runs on it and re-selects the same
        power = system.power_nodes
        warm = system.run(v0=stable.vector, epoch=1)
        assert warm.warm_started
        re_cold = GossipTrust(random_S, cfg, power_nodes=power).run()
        assert warm.cycles < re_cold.cycles
        assert warm.total_gossip_steps < re_cold.total_gossip_steps
        from repro.gossip.convergence import average_relative_error

        assert average_relative_error(warm.vector, re_cold.vector) < 5e-3

    def test_v0_wrong_shape_rejected(self, random_S):
        system = GossipTrust(random_S, GossipTrustConfig(n=random_S.n, seed=0))
        with pytest.raises(ValidationError):
            system.run(v0=np.ones(random_S.n + 1))
        with pytest.raises(ValidationError):
            system.run(v0=np.ones((random_S.n, 1)))

    def test_v0_negative_rejected(self, random_S):
        system = GossipTrust(random_S, GossipTrustConfig(n=random_S.n, seed=0))
        bad = np.full(random_S.n, 1.0 / random_S.n)
        bad[0] = -0.1
        with pytest.raises(ValidationError):
            system.run(v0=bad)

    def test_v0_nan_rejected(self, random_S):
        system = GossipTrust(random_S, GossipTrustConfig(n=random_S.n, seed=0))
        bad = np.full(random_S.n, 1.0 / random_S.n)
        bad[0] = np.nan
        with pytest.raises(ValidationError):
            system.run(v0=bad)

    def test_v0_zero_mass_rejected(self, random_S):
        system = GossipTrust(random_S, GossipTrustConfig(n=random_S.n, seed=0))
        with pytest.raises(ValidationError):
            system.run(v0=np.zeros(random_S.n))

    def test_caller_vector_not_mutated(self, random_S):
        system = GossipTrust(
            random_S,
            GossipTrustConfig(n=random_S.n, seed=4, compute_reference=False),
        )
        v0 = np.full(random_S.n, 2.0)
        keep = v0.copy()
        system.run(v0=v0)
        assert np.array_equal(v0, keep)
