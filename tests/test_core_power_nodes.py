"""Power-node selection semantics."""

import numpy as np
import pytest

from repro.core.power_nodes import PowerNodeSelector
from repro.errors import ValidationError


class TestSelection:
    def test_selects_top_q(self):
        sel = PowerNodeSelector(5, 2)
        chosen = sel.select(np.array([0.1, 0.4, 0.05, 0.3, 0.15]))
        assert chosen == frozenset({1, 3})

    def test_tie_break_prefers_lower_id(self):
        sel = PowerNodeSelector(4, 2)
        chosen = sel.select(np.array([0.25, 0.25, 0.25, 0.25]))
        assert chosen == frozenset({0, 1})

    def test_zero_q_selects_nothing(self):
        sel = PowerNodeSelector(4, 0)
        assert sel.select(np.ones(4) / 4) == frozenset()

    def test_alive_mask_excludes_departed(self):
        sel = PowerNodeSelector(4, 2)
        alive = np.array([True, False, True, True])
        chosen = sel.select(np.array([0.1, 0.9, 0.3, 0.2]), alive=alive)
        assert 1 not in chosen
        assert chosen == frozenset({2, 3})

    def test_all_dead_yields_empty(self):
        sel = PowerNodeSelector(3, 2)
        chosen = sel.select(np.ones(3) / 3, alive=np.zeros(3, dtype=bool))
        assert chosen == frozenset()

    def test_turnover_tracking(self):
        sel = PowerNodeSelector(4, 2)
        sel.select(np.array([0.4, 0.3, 0.2, 0.1]))
        sel.select(np.array([0.1, 0.2, 0.3, 0.4]))
        assert sel.last_turnover == 4  # {0,1} -> {2,3}
        assert sel.rounds == 2

    def test_deterministic_across_calls(self):
        v = np.array([0.5, 0.2, 0.2, 0.1])
        a = PowerNodeSelector(4, 2).select(v)
        b = PowerNodeSelector(4, 2).select(v)
        assert a == b


class TestPretrust:
    def test_pretrust_over_current_selection(self):
        sel = PowerNodeSelector(4, 2)
        sel.select(np.array([0.4, 0.3, 0.2, 0.1]))
        p = sel.pretrust()
        assert p.vector.tolist() == [0.5, 0.5, 0.0, 0.0]

    def test_pretrust_uniform_before_selection(self):
        p = PowerNodeSelector(4, 2).pretrust()
        assert p.vector.tolist() == [0.25] * 4


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(ValidationError):
            PowerNodeSelector(0, 0)
        with pytest.raises(ValidationError):
            PowerNodeSelector(3, 4)
        with pytest.raises(ValidationError):
            PowerNodeSelector(3, -1)

    def test_bad_vector_shapes(self):
        sel = PowerNodeSelector(3, 1)
        with pytest.raises(ValidationError):
            sel.select(np.ones(4) / 4)
        with pytest.raises(ValidationError):
            sel.select(np.ones(3) / 3, alive=np.ones(4, dtype=bool))
