"""Selection policies: NoTrust and reputation-based."""

import numpy as np
import pytest

from repro.baselines.notrust import NoTrustSelector, ReputationSelector
from repro.errors import ValidationError


class TestNoTrust:
    def test_choice_is_member(self):
        sel = NoTrustSelector(rng=0)
        for _ in range(20):
            assert sel.choose([3, 7, 9]) in (3, 7, 9)

    def test_uniformity(self):
        sel = NoTrustSelector(rng=1)
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(6000):
            counts[sel.choose([1, 2, 3])] += 1
        freqs = np.array(list(counts.values())) / 6000
        assert np.all(np.abs(freqs - 1 / 3) < 0.03)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            NoTrustSelector().choose([])

    def test_update_scores_is_noop(self):
        sel = NoTrustSelector(rng=0)
        sel.update_scores(np.ones(5))  # must not raise


class TestReputationSelector:
    def test_picks_highest_score(self):
        sel = ReputationSelector(5, rng=0)
        sel.update_scores(np.array([0.1, 0.5, 0.2, 0.15, 0.05]))
        assert sel.choose([0, 1, 2]) == 1
        assert sel.choose([3, 4]) == 3

    def test_uniform_scores_give_random_choice(self):
        sel = ReputationSelector(4, rng=2)
        picks = {sel.choose([0, 1, 2, 3]) for _ in range(100)}
        assert len(picks) > 1  # not always the lowest id

    def test_tie_break_among_top_is_random_member(self):
        sel = ReputationSelector(4, rng=3)
        sel.update_scores(np.array([0.4, 0.4, 0.1, 0.1]))
        picks = {sel.choose([0, 1, 2, 3]) for _ in range(50)}
        assert picks <= {0, 1}
        assert len(picks) == 2

    def test_update_scores_shape_checked(self):
        sel = ReputationSelector(3)
        with pytest.raises(ValidationError):
            sel.update_scores(np.ones(4))

    def test_scores_copy_semantics(self):
        sel = ReputationSelector(3, rng=0)
        scores = np.array([0.2, 0.3, 0.5])
        sel.update_scores(scores)
        scores[0] = 99.0
        assert sel.scores[0] == pytest.approx(0.2)
        view = sel.scores
        view[1] = 99.0
        assert sel.scores[1] == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ReputationSelector(3).choose([])

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            ReputationSelector(0)


class TestProportionalSelector:
    def test_samples_proportionally_to_scores(self):
        from repro.baselines.notrust import ProportionalSelector

        sel = ProportionalSelector(3, rng=0)
        sel.update_scores(np.array([0.6, 0.3, 0.1]))
        counts = np.zeros(3)
        for _ in range(6000):
            counts[sel.choose([0, 1, 2])] += 1
        freqs = counts / 6000
        assert freqs[0] == pytest.approx(0.6, abs=0.03)
        assert freqs[2] == pytest.approx(0.1, abs=0.02)

    def test_sharpness_zero_is_uniform(self):
        from repro.baselines.notrust import ProportionalSelector

        sel = ProportionalSelector(3, sharpness=0.0, rng=1)
        sel.update_scores(np.array([0.9, 0.05, 0.05]))
        counts = np.zeros(3)
        for _ in range(6000):
            counts[sel.choose([0, 1, 2])] += 1
        assert np.all(np.abs(counts / 6000 - 1 / 3) < 0.04)

    def test_high_sharpness_approaches_argmax(self):
        from repro.baselines.notrust import ProportionalSelector

        sel = ProportionalSelector(3, sharpness=16.0, rng=2)
        sel.update_scores(np.array([0.5, 0.3, 0.2]))
        picks = [sel.choose([0, 1, 2]) for _ in range(200)]
        assert picks.count(0) > 195

    def test_zero_scores_fall_back_to_uniform(self):
        from repro.baselines.notrust import ProportionalSelector

        sel = ProportionalSelector(4, rng=3)
        sel.update_scores(np.zeros(4))
        assert sel.choose([1, 3]) in (1, 3)

    def test_validation(self):
        from repro.baselines.notrust import ProportionalSelector

        with pytest.raises(ValidationError):
            ProportionalSelector(0)
        with pytest.raises(ValidationError):
            ProportionalSelector(3, sharpness=-1.0)
        sel = ProportionalSelector(3)
        with pytest.raises(ValidationError):
            sel.choose([])
        with pytest.raises(ValidationError):
            sel.update_scores(np.ones(4))
