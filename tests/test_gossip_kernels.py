"""Fast-kernel contract: the allocation-free path vs the legacy chain.

The fast kernel (CSR-layout segment-sum over preallocated buffers,
check cadence, sparse warm-start) and the legacy kernel (per-step
``sparse.csr_matrix`` construction and the ``0.5*(X + A@X)`` allocation
chain) consume the same partner RNG stream, so on a seeded instance
they must walk the same mixing-matrix sequence: identical step counts,
matching results up to floating-point accumulation order.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.base import exact_aggregate, local_rows
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.factory import make_engine
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngStreams

SEED = 0
N = 128
EPSILON = 1e-4


def _instance(n):
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    v = np.full(n, 1.0 / n)
    return S, v


def _cycle(n, S, v, **options):
    eng = make_engine("sync", n=n, rng=RngStreams(SEED), epsilon=EPSILON, **options)
    return eng.run_cycle(S, v)


class TestFastVsLegacy:
    def test_same_steps_and_scores(self):
        """Same stream, same stop step; scores equal up to fp reordering."""
        S, v = _instance(N)
        fast = _cycle(N, S, v, mode="full", kernel="fast", check_every=1)
        legacy = _cycle(N, S, v, mode="full", kernel="legacy", check_every=1)
        assert fast.steps == legacy.steps
        assert fast.converged and legacy.converged
        np.testing.assert_allclose(fast.v_next, legacy.v_next, rtol=1e-12)
        assert fast.gossip_error == pytest.approx(legacy.gossip_error, rel=1e-6)

    def test_coarse_cadence_never_overshoots_legacy(self):
        """At check_every > 1 the fast kernel's fine phase resolves the
        stop step at per-step granularity, so it stops no later than the
        legacy kernel's coarse-aligned stop — and both land on the same
        answer within the epsilon target."""
        S, v = _instance(N)
        fast = _cycle(N, S, v, mode="full", kernel="fast", check_every=4)
        legacy = _cycle(N, S, v, mode="full", kernel="legacy", check_every=4)
        assert fast.converged and legacy.converged
        assert fast.steps <= legacy.steps
        np.testing.assert_allclose(fast.v_next, legacy.v_next, rtol=1e-4)

    def test_probe_mode_agrees_with_full(self):
        """Probe and full share the partner stream -> same step count."""
        S, v = _instance(N)
        full = _cycle(N, S, v, mode="full", kernel="fast")
        probe = _cycle(N, S, v, mode="probe", probe_columns=64, kernel="fast")
        assert probe.steps == full.steps
        assert probe.converged and full.converged
        # probe's v_next is the documented exact substitution
        np.testing.assert_allclose(probe.v_next, full.exact, rtol=1e-12)


class TestCheckEveryCadence:
    def test_result_invariant_modulo_granularity(self):
        """check_every in {1, 4} lands on the same answer.

        The coarse cadence measures the residual over a longer window
        (a stricter criterion), so step counts may differ by a few
        steps of granularity — but both must converge, to scores that
        agree far below the epsilon target.
        """
        S, v = _instance(256)
        r1 = _cycle(256, S, v, mode="full", kernel="fast", check_every=1)
        r4 = _cycle(256, S, v, mode="full", kernel="fast", check_every=4)
        assert r1.converged and r4.converged
        assert abs(r4.steps - r1.steps) <= 8
        np.testing.assert_allclose(r4.v_next, r1.v_next, rtol=1e-4)
        assert r1.gossip_error < EPSILON and r4.gossip_error < EPSILON

    def test_validation(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, check_every=0)
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="warp")
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, densify_threshold=1.5)


class TestSparseWarmStart:
    def test_densify_threshold_does_not_change_result(self):
        """Warm-start steps replay the same mixing matrices in CSR form."""
        S, v = _instance(N)
        warm = _cycle(N, S, v, mode="full", kernel="fast", densify_threshold=0.25)
        cold = _cycle(N, S, v, mode="full", kernel="fast", densify_threshold=0.0)
        assert warm.steps == cold.steps
        np.testing.assert_allclose(warm.v_next, cold.v_next, rtol=1e-12)

    def test_mixing_matrix_is_half_identity_plus_scatter(self):
        n = 7
        ids = np.arange(n)
        targets = np.array([3, 2, 0, 0, 1, 0, 5])
        M = SynchronousGossipEngine._mixing_matrix(targets, n, ids).toarray()
        from scipy import sparse

        A = sparse.csr_matrix((np.ones(n), (targets, ids)), shape=(n, n))
        expected = 0.5 * (np.eye(n) + A.toarray())
        np.testing.assert_array_equal(M, expected)


class TestBudget:
    def test_budget_exhaustion_raises(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", kernel="fast", max_steps=3,
        )
        with pytest.raises(ConvergenceError):
            eng.run_cycle(S, v)

    def test_budget_best_effort(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", kernel="fast", max_steps=3,
        )
        res = eng.run_cycle(S, v, raise_on_budget=False)
        assert not res.converged
        assert res.steps == 3


class TestExactAggregate:
    """The shared oracle helper: S^T v from any trust-matrix form."""

    def test_all_input_forms_agree(self):
        S, v = _instance(N)
        assert isinstance(S, TrustMatrix)
        csr = S.sparse()
        dense = csr.toarray()
        rows = local_rows(S, N)
        expected = np.asarray(csr.T @ v).ravel()
        for form in (S, csr, dense, rows):
            np.testing.assert_allclose(
                exact_aggregate(form, v, N), expected, rtol=1e-12
            )


class TestWorkspaceReuse:
    """The persistent cycle workspace must be invisible in the results."""

    def _pair(self, mode):
        reuse = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="fast", reuse_workspace=True,
        )
        fresh = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="fast", reuse_workspace=False,
        )
        return reuse, fresh

    @pytest.mark.parametrize("mode", ["full", "probe"])
    def test_reuse_matches_fresh_step_for_step(self, mode):
        """Workspace-reuse runs equal fresh-workspace runs, cycle by cycle."""
        S, v = _instance(N)
        reuse, fresh = self._pair(mode)
        vr, vf = v.copy(), v.copy()
        for _ in range(3):
            rr = reuse.run_cycle(S, vr)
            rf = fresh.run_cycle(S, vf)
            assert rr.steps == rf.steps
            np.testing.assert_array_equal(rr.v_next, rf.v_next)
            assert rr.gossip_error == rf.gossip_error
            vr = rr.v_next / rr.v_next.sum()
            vf = rf.v_next / rf.v_next.sum()

    def test_repeated_cycles_on_one_engine_are_deterministic(self):
        """Two engines with the same seed agree even though one has a
        warm (already-written) workspace by its second cycle."""
        S, v = _instance(N)
        a = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        b = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        va, vb = v.copy(), v.copy()
        for _ in range(3):
            ra = a.run_cycle(S, va)
            rb = b.run_cycle(S, vb)
            np.testing.assert_array_equal(ra.v_next, rb.v_next)
            va = ra.v_next / ra.v_next.sum()
            vb = rb.v_next / rb.v_next.sum()

    def test_workspace_survives_cycles_and_invalidates(self):
        S, v = _instance(N)
        eng = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        assert eng.workspace is None
        eng.run_cycle(S, v)
        ws = eng.workspace
        assert ws is not None and ws.valid
        eng.run_cycle(S, v)
        assert eng.workspace is ws  # survived across cycles
        eng.invalidate_workspace()
        assert not ws.valid
        assert eng.workspace is None
        eng.run_cycle(S, v)
        assert eng.workspace is not ws  # rebuilt after invalidation

    def test_reuse_disabled_keeps_no_workspace(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", reuse_workspace=False,
        )
        eng.run_cycle(S, v)
        assert eng.workspace is None
