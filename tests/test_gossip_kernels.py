"""Fast-kernel contract: the allocation-free path vs the legacy chain.

The fast kernel (CSR-layout segment-sum over preallocated buffers,
check cadence, sparse warm-start) and the legacy kernel (per-step
``sparse.csr_matrix`` construction and the ``0.5*(X + A@X)`` allocation
chain) consume the same partner RNG stream, so on a seeded instance
they must walk the same mixing-matrix sequence: identical step counts,
matching results up to floating-point accumulation order.

The memory-bounded sparse kernel (``kernel="sparse"`` — CSR state for
the whole cycle, pooled SpGEMMs, blocked estimate gathers) consumes the
*same* stream and cadence again, so the identical contract extends to
it: same step counts as the fast kernel, scores to round-off, in every
mode, with any workspace backend, reused or fresh.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError, ValidationError
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.base import exact_aggregate, local_rows
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.factory import make_engine
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngStreams

SEED = 0
N = 128
EPSILON = 1e-4


def _instance(n):
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    v = np.full(n, 1.0 / n)
    return S, v


def _cycle(n, S, v, **options):
    eng = make_engine("sync", n=n, rng=RngStreams(SEED), epsilon=EPSILON, **options)
    return eng.run_cycle(S, v)


class TestFastVsLegacy:
    def test_same_steps_and_scores(self):
        """Same stream, same stop step; scores equal up to fp reordering."""
        S, v = _instance(N)
        fast = _cycle(N, S, v, mode="full", kernel="fast", check_every=1)
        legacy = _cycle(N, S, v, mode="full", kernel="legacy", check_every=1)
        assert fast.steps == legacy.steps
        assert fast.converged and legacy.converged
        np.testing.assert_allclose(fast.v_next, legacy.v_next, rtol=1e-12)
        assert fast.gossip_error == pytest.approx(legacy.gossip_error, rel=1e-6)

    def test_coarse_cadence_never_overshoots_legacy(self):
        """At check_every > 1 the fast kernel's fine phase resolves the
        stop step at per-step granularity, so it stops no later than the
        legacy kernel's coarse-aligned stop — and both land on the same
        answer within the epsilon target."""
        S, v = _instance(N)
        fast = _cycle(N, S, v, mode="full", kernel="fast", check_every=4)
        legacy = _cycle(N, S, v, mode="full", kernel="legacy", check_every=4)
        assert fast.converged and legacy.converged
        assert fast.steps <= legacy.steps
        np.testing.assert_allclose(fast.v_next, legacy.v_next, rtol=1e-4)

    def test_probe_mode_agrees_with_full(self):
        """Probe and full share the partner stream -> same step count."""
        S, v = _instance(N)
        full = _cycle(N, S, v, mode="full", kernel="fast")
        probe = _cycle(N, S, v, mode="probe", probe_columns=64, kernel="fast")
        assert probe.steps == full.steps
        assert probe.converged and full.converged
        # probe's v_next is the documented exact substitution
        np.testing.assert_allclose(probe.v_next, full.exact, rtol=1e-12)


class TestCheckEveryCadence:
    def test_result_invariant_modulo_granularity(self):
        """check_every in {1, 4} lands on the same answer.

        The coarse cadence measures the residual over a longer window
        (a stricter criterion), so step counts may differ by a few
        steps of granularity — but both must converge, to scores that
        agree far below the epsilon target.
        """
        S, v = _instance(256)
        r1 = _cycle(256, S, v, mode="full", kernel="fast", check_every=1)
        r4 = _cycle(256, S, v, mode="full", kernel="fast", check_every=4)
        assert r1.converged and r4.converged
        assert abs(r4.steps - r1.steps) <= 8
        np.testing.assert_allclose(r4.v_next, r1.v_next, rtol=1e-4)
        assert r1.gossip_error < EPSILON and r4.gossip_error < EPSILON

    def test_validation(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, check_every=0)
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="warp")
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, densify_threshold=1.5)


class TestSparseWarmStart:
    def test_densify_threshold_does_not_change_result(self):
        """Warm-start steps replay the same mixing matrices in CSR form."""
        S, v = _instance(N)
        warm = _cycle(N, S, v, mode="full", kernel="fast", densify_threshold=0.25)
        cold = _cycle(N, S, v, mode="full", kernel="fast", densify_threshold=0.0)
        assert warm.steps == cold.steps
        np.testing.assert_allclose(warm.v_next, cold.v_next, rtol=1e-12)

    def test_mixing_matrix_is_half_identity_plus_scatter(self):
        n = 7
        ids = np.arange(n)
        targets = np.array([3, 2, 0, 0, 1, 0, 5])
        M = SynchronousGossipEngine._mixing_matrix(targets, n, ids).toarray()
        from scipy import sparse

        A = sparse.csr_matrix((np.ones(n), (targets, ids)), shape=(n, n))
        expected = 0.5 * (np.eye(n) + A.toarray())
        np.testing.assert_array_equal(M, expected)


class TestBudget:
    def test_budget_exhaustion_raises(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", kernel="fast", max_steps=3,
        )
        with pytest.raises(ConvergenceError):
            eng.run_cycle(S, v)

    def test_budget_best_effort(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", kernel="fast", max_steps=3,
        )
        res = eng.run_cycle(S, v, raise_on_budget=False)
        assert not res.converged
        assert res.steps == 3


class TestExactAggregate:
    """The shared oracle helper: S^T v from any trust-matrix form."""

    def test_all_input_forms_agree(self):
        S, v = _instance(N)
        assert isinstance(S, TrustMatrix)
        csr = S.sparse()
        dense = csr.toarray()
        rows = local_rows(S, N)
        expected = np.asarray(csr.T @ v).ravel()
        for form in (S, csr, dense, rows):
            np.testing.assert_allclose(
                exact_aggregate(form, v, N), expected, rtol=1e-12
            )


class TestWorkspaceReuse:
    """The persistent cycle workspace must be invisible in the results."""

    def _pair(self, mode):
        reuse = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="fast", reuse_workspace=True,
        )
        fresh = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="fast", reuse_workspace=False,
        )
        return reuse, fresh

    @pytest.mark.parametrize("mode", ["full", "probe"])
    def test_reuse_matches_fresh_step_for_step(self, mode):
        """Workspace-reuse runs equal fresh-workspace runs, cycle by cycle."""
        S, v = _instance(N)
        reuse, fresh = self._pair(mode)
        vr, vf = v.copy(), v.copy()
        for _ in range(3):
            rr = reuse.run_cycle(S, vr)
            rf = fresh.run_cycle(S, vf)
            assert rr.steps == rf.steps
            np.testing.assert_array_equal(rr.v_next, rf.v_next)
            assert rr.gossip_error == rf.gossip_error
            vr = rr.v_next / rr.v_next.sum()
            vf = rf.v_next / rf.v_next.sum()

    def test_repeated_cycles_on_one_engine_are_deterministic(self):
        """Two engines with the same seed agree even though one has a
        warm (already-written) workspace by its second cycle."""
        S, v = _instance(N)
        a = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        b = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        va, vb = v.copy(), v.copy()
        for _ in range(3):
            ra = a.run_cycle(S, va)
            rb = b.run_cycle(S, vb)
            np.testing.assert_array_equal(ra.v_next, rb.v_next)
            va = ra.v_next / ra.v_next.sum()
            vb = rb.v_next / rb.v_next.sum()

    def test_workspace_survives_cycles_and_invalidates(self):
        S, v = _instance(N)
        eng = make_engine("sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, mode="full")
        assert eng.workspace is None
        eng.run_cycle(S, v)
        ws = eng.workspace
        assert ws is not None and ws.valid
        eng.run_cycle(S, v)
        assert eng.workspace is ws  # survived across cycles
        eng.invalidate_workspace()
        assert not ws.valid
        assert eng.workspace is None
        eng.run_cycle(S, v)
        assert eng.workspace is not ws  # rebuilt after invalidation

    def test_reuse_disabled_keeps_no_workspace(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", reuse_workspace=False,
        )
        eng.run_cycle(S, v)
        assert eng.workspace is None


class TestSparseKernel:
    """``kernel="sparse"`` must be an exact replay of the fast kernel."""

    @pytest.mark.parametrize("n", [250, 1000])
    @pytest.mark.parametrize("mode", ["probe", "full"])
    def test_parity_with_fast(self, n, mode):
        """Same stream, same cadence -> same stop step, same scores."""
        S, v = _instance(n)
        fast = _cycle(n, S, v, mode=mode, kernel="fast")
        sparse_r = _cycle(n, S, v, mode=mode, kernel="sparse")
        assert sparse_r.steps == fast.steps
        assert sparse_r.converged and fast.converged
        np.testing.assert_allclose(sparse_r.v_next, fast.v_next, rtol=0, atol=1e-12)
        assert sparse_r.gossip_error == pytest.approx(fast.gossip_error, rel=1e-9)

    def test_block_rows_is_result_invariant(self):
        """The cache-block size only tiles the estimate pass — any value
        lands on bit-identical results."""
        S, v = _instance(250)
        base = _cycle(250, S, v, mode="probe", kernel="sparse")
        for block_rows in (7, 64, 250):
            blocked = _cycle(
                250, S, v, mode="probe", kernel="sparse", block_rows=block_rows
            )
            assert blocked.steps == base.steps
            np.testing.assert_array_equal(blocked.v_next, base.v_next)

    def test_float32_tracks_float64(self):
        """float32 buffers converge to the float64 answer within the
        documented accumulation bound (~steps * eps32 relative, orders
        of magnitude below the epsilon target)."""
        S, v = _instance(250)
        r64 = _cycle(250, S, v, mode="full", kernel="sparse", dtype="float64")
        r32 = _cycle(250, S, v, mode="full", kernel="sparse", dtype="float32")
        assert r64.converged and r32.converged
        np.testing.assert_allclose(r32.v_next, r64.v_next, rtol=1e-3)
        assert abs(r32.steps - r64.steps) <= 8  # residuals may flip a check

    def test_float32_fast_kernel_too(self):
        """The dtype option applies to the dense fast kernel as well."""
        S, v = _instance(250)
        r64 = _cycle(250, S, v, mode="full", kernel="fast", dtype="float64")
        r32 = _cycle(250, S, v, mode="full", kernel="fast", dtype="float32")
        assert r64.converged and r32.converged
        np.testing.assert_allclose(r32.v_next, r64.v_next, rtol=1e-3)

    @pytest.mark.parametrize("mode", ["probe", "full"])
    def test_warm_start_invariance(self, mode):
        """Reusing the sparse workspace across cycles equals fresh
        buffers, cycle by cycle (the pools carry no state between
        cycles beyond their capacity)."""
        S, v = _instance(N)
        reuse = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="sparse", reuse_workspace=True,
        )
        fresh = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="sparse", reuse_workspace=False,
        )
        vr, vf = v.copy(), v.copy()
        for _ in range(3):
            rr = reuse.run_cycle(S, vr)
            rf = fresh.run_cycle(S, vf)
            assert rr.steps == rf.steps
            np.testing.assert_array_equal(rr.v_next, rf.v_next)
            assert rr.gossip_error == rf.gossip_error
            vr = rr.v_next / rr.v_next.sum()
            vf = rf.v_next / rf.v_next.sum()

    def test_sparse_workspace_lifecycle(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON, kernel="sparse",
        )
        assert eng.sparse_workspace is None
        eng.run_cycle(S, v)
        ws = eng.sparse_workspace
        assert ws is not None and ws.valid
        eng.run_cycle(S, v)
        assert eng.sparse_workspace is ws  # survived across cycles
        eng.invalidate_workspace()
        assert not ws.valid
        assert eng.sparse_workspace is None

    @pytest.mark.parametrize("backend", ["shared", "memmap"])
    def test_workspace_backends_agree(self, backend):
        """Shared-memory and memmap workspaces are invisible in results."""
        S, v = _instance(N)
        base = _cycle(N, S, v, mode="probe", kernel="sparse")
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", workspace_backend=backend,
        )
        res = eng.run_cycle(S, v)
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        eng.invalidate_workspace()  # releases segments / spill files

    def test_sanitizer_armed_cycle(self):
        """The armed-sanitizer contract (the REPRO_SANITIZE=1 posture)
        holds through the sparse kernel: every mass/nonnegativity check
        fires and the result is unchanged."""
        S, v = _instance(N)
        base = _cycle(N, S, v, mode="probe", kernel="sparse")
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse",
        )
        eng.arm_sanitizer()
        assert eng.sanitizer is not None
        res = eng.run_cycle(S, v)
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert eng.sanitizer.checks > 0

    def test_float32_widens_armed_sanitizer(self):
        """float32 accumulation drift would trip the 1e-9 default; the
        engine arms a widened sanitizer instead."""
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            kernel="sparse", dtype="float32",
        )
        eng.arm_sanitizer()
        assert eng.sanitizer.rel_tol == pytest.approx(1e-4)
        S, v = _instance(N)
        res = eng.run_cycle(S, v)
        assert res.converged

    def test_budget_best_effort(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", max_steps=3,
        )
        res = eng.run_cycle(S, v, raise_on_budget=False)
        assert not res.converged
        assert res.steps == 3
        assert np.all(np.isfinite(res.v_next))  # probe substitutes the oracle

    def test_budget_exhaustion_raises(self):
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", max_steps=3,
        )
        with pytest.raises(ConvergenceError):
            eng.run_cycle(S, v)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, dtype="float16")
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="legacy", dtype="float32")
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, block_rows=-1)
        with pytest.raises((ConfigurationError, ValidationError)):
            SynchronousGossipEngine(8, workspace_backend="bogus")
        with pytest.raises(ValidationError):
            # non-private buffers without reuse would leak per cycle
            SynchronousGossipEngine(
                8, kernel="sparse", workspace_backend="shared",
                reuse_workspace=False,
            )

    def test_phase_times_recorded(self):
        S, v = _instance(N)
        res = _cycle(N, S, v, mode="probe", kernel="sparse")
        assert set(res.phase_times) >= {"setup", "oracle", "alloc", "kernel"}
        assert all(t >= 0.0 for t in res.phase_times.values())


class TestShardedSparseKernel:
    """Column sharding must be invisible: any shard/worker split of the
    probe working set replays the identical SpGEMM sequence, so steps,
    scores, and gossip error are *bitwise* equal to the unsharded run."""

    @pytest.mark.parametrize("n", [250, 1000])
    @pytest.mark.parametrize("mode", ["probe", "full"])
    def test_shard_count_invariance(self, n, mode):
        S, v = _instance(n)
        base = _cycle(n, S, v, mode=mode, kernel="sparse")
        for shards in (2, 7):
            res = _cycle(n, S, v, mode=mode, kernel="sparse", shards=shards)
            assert res.steps == base.steps
            np.testing.assert_array_equal(res.v_next, base.v_next)
            assert res.gossip_error == base.gossip_error

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_shard_invariance_both_dtypes(self, dtype):
        S, v = _instance(250)
        base = _cycle(250, S, v, mode="probe", kernel="sparse", dtype=dtype)
        res = _cycle(
            250, S, v, mode="probe", kernel="sparse", dtype=dtype, shards=7
        )
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert res.gossip_error == base.gossip_error

    def _worker_cycle(self, n, S, v, *, mode="probe", backend="shared", **opts):
        eng = make_engine(
            "sync", n=n, rng=RngStreams(SEED), epsilon=EPSILON,
            mode=mode, kernel="sparse", workspace_backend=backend, **opts,
        )
        try:
            return eng.run_cycle(S, v)
        finally:
            eng.invalidate_workspace()  # shuts the executor, frees segments

    @pytest.mark.parametrize("n", [250, 1000])
    @pytest.mark.parametrize("backend", ["shared", "memmap"])
    def test_shard_workers_invariance(self, n, backend):
        """Worker processes attach the pools by manifest and step their
        shards in place — results equal single-process stepping exactly."""
        S, v = _instance(n)
        base = _cycle(n, S, v, mode="probe", kernel="sparse", shards=2)
        res = self._worker_cycle(
            n, S, v, backend=backend, shards=2, shard_workers=4
        )
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert res.gossip_error == base.gossip_error

    def test_shard_workers_full_mode(self):
        S, v = _instance(250)
        base = _cycle(250, S, v, mode="full", kernel="sparse")
        res = self._worker_cycle(
            250, S, v, mode="full", shards=3, shard_workers=4
        )
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)

    def test_sanitizer_armed_sharded(self):
        """The armed invariant sanitizer passes over sharded state (and
        parallel-stepped state) exactly as over the unsharded kernel."""
        S, v = _instance(N)
        base = _cycle(N, S, v, mode="probe", kernel="sparse")
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=3, shard_workers=2,
            workspace_backend="shared",
        )
        eng.arm_sanitizer()
        try:
            res = eng.run_cycle(S, v)
        finally:
            eng.invalidate_workspace()
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert eng.sanitizer.checks > 0

    def test_auto_shard_raise_for_int32_guard(self):
        """A probe width whose pool would overflow int32 indexing is
        auto-split into the minimum legal shard count."""
        from repro.gossip.memory import min_shards_for

        eng = SynchronousGossipEngine(2**17, kernel="sparse")
        assert eng._effective_shards(64) == 1
        assert eng._effective_shards(2**15) == min_shards_for(2**17, 2**15) == 3
        wide = SynchronousGossipEngine(2**17, kernel="sparse", shards=5)
        assert wide._effective_shards(2**15) == 5  # explicit count kept

    def test_executor_lifecycle(self):
        """The shard executor follows the workspace: built lazily on the
        first parallel cycle, shut down by invalidation, rebuilt after."""
        S, v = _instance(N)
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=2, shard_workers=2,
            workspace_backend="shared",
        )
        serial = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse",
        )
        assert eng._shard_executor is None
        first = eng.run_cycle(S, v)
        assert eng._shard_executor is not None
        second = eng.run_cycle(S, v)  # executor reused across cycles
        eng.invalidate_workspace()
        assert eng._shard_executor is None
        # The reused executor's second cycle must still replay the
        # serial engine exactly (workers address pools through the
        # logical -> physical slot map, which rotates between cycles).
        np.testing.assert_array_equal(first.v_next, serial.run_cycle(S, v).v_next)
        np.testing.assert_array_equal(second.v_next, serial.run_cycle(S, v).v_next)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="fast", shards=2)
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="fast", shard_workers=2)
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="sparse", shards=0)
        with pytest.raises(ValidationError):
            SynchronousGossipEngine(8, kernel="sparse", shard_workers=0)
        with pytest.raises(ValidationError):
            # parallel stepping needs attachable buffers
            SynchronousGossipEngine(8, kernel="sparse", shard_workers=2)


class TestDenseHandoff:
    """Serial private-backend sparse cycles hand shards off to dense
    slot stepping mid-cycle (csr_matvecs SpMM instead of SpGEMM).  The
    handoff must be bitwise invisible: same accumulation order, absent
    CSR entries become exact dense zeros — so every result must equal
    the pure-CSR path (which shared/memmap serial runs still take)."""

    def test_handoff_fires_and_releases_pools(self):
        """A converged serial private cycle has handed every shard off
        (convergence needs full W occupancy, far past any threshold)
        and shrunk the CSR pools to stubs."""
        S, v = _instance(250)
        eng = make_engine(
            "sync", n=250, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=2,
        )
        res = eng.run_cycle(S, v)
        assert res.converged
        ws = eng.sparse_workspace
        assert all(ws.dense_on)
        for si, triple in enumerate(ws.shard_pools):
            assert ws.dense[si] is not None
            assert all(d.shape == (250, triple[0].cols) for d in ws.dense[si])
            assert all(pool.capacity == 1 for pool in triple)

    @pytest.mark.parametrize("backend", ["shared", "memmap"])
    def test_handoff_matches_pure_csr_serial(self, backend):
        """Shared/memmap serial runs keep pooled CSR for the whole
        cycle (released arrays would dangle their manifests) — the
        private run's dense handoff must match them bitwise."""
        S, v = _instance(250)
        private = _cycle(250, S, v, mode="probe", kernel="sparse", shards=2)
        eng = make_engine(
            "sync", n=250, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=2,
            workspace_backend=backend,
        )
        try:
            pure = eng.run_cycle(S, v)
            assert not any(eng.sparse_workspace.dense_on)
        finally:
            eng.invalidate_workspace()
        assert private.steps == pure.steps
        np.testing.assert_array_equal(private.v_next, pure.v_next)
        assert private.gossip_error == pure.gossip_error

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("threshold", [0.0, 0.1, 1.0])
    def test_handoff_point_invariance(self, threshold, dtype):
        """Results are invariant in *when* the handoff happens — from
        densify-immediately to only-at-full-occupancy."""
        S, v = _instance(250)
        base = _cycle(250, S, v, mode="probe", kernel="sparse", dtype=dtype)
        res = _cycle(
            250, S, v, mode="probe", kernel="sparse", dtype=dtype,
            densify_threshold=threshold, shards=3,
        )
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert res.gossip_error == base.gossip_error

    def test_handoff_multi_cycle_reuse(self):
        """Cycle 2 reloads the released pools and hands off again; both
        cycles must match a pure-CSR (memmap serial) engine bitwise."""
        S, v = _instance(250)
        dense_eng = make_engine(
            "sync", n=250, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=2,
        )
        csr_eng = make_engine(
            "sync", n=250, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", shards=2,
            workspace_backend="memmap",
        )
        try:
            for _ in range(2):
                got = dense_eng.run_cycle(S, v)
                want = csr_eng.run_cycle(S, v)
                assert got.steps == want.steps
                np.testing.assert_array_equal(got.v_next, want.v_next)
        finally:
            csr_eng.invalidate_workspace()

    def test_handoff_full_mode_and_sanitizer(self):
        """Full mode exercises the dense mass/nonnegativity sanitizer
        branches over handed-off state; result matches the fast kernel
        to accumulation-order rounding."""
        S, v = _instance(N)
        fast = _cycle(N, S, v, mode="full", kernel="fast")
        eng = make_engine(
            "sync", n=N, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="full", kernel="sparse",
        )
        eng.arm_sanitizer()
        res = eng.run_cycle(S, v)
        assert all(eng.sparse_workspace.dense_on)
        assert eng.sanitizer.checks > 0
        assert res.steps == fast.steps
        np.testing.assert_allclose(res.v_next, fast.v_next, rtol=1e-12)

    def test_budget_exhaustion_reads_dense_state(self):
        """The best-effort estimates path (_sparse_estimates) reads
        normalized dense slots when the budget runs out post-handoff."""
        S, v = _instance(250)
        eng = make_engine(
            "sync", n=250, rng=RngStreams(SEED), epsilon=1e-12,
            mode="probe", kernel="sparse", max_steps=40,
        )
        res = eng.run_cycle(S, v, raise_on_budget=False)
        assert not res.converged and res.steps == 40
        assert all(eng.sparse_workspace.dense_on)
        assert np.isfinite(res.gossip_error)
