"""Table 1 regression: the paper's worked example, exactly."""

import pytest

from repro.experiments.table1_example import (
    EXPECTED_CONSENSUS,
    INITIAL_W,
    INITIAL_X,
    PARTNER_SCRIPT,
    run_table1,
)


class TestPaperNumbers:
    def test_initial_state_from_paper(self):
        # x_i(0) = s_i2 * v_i(t) with v = (1/2, 1/3, 1/6), s_.2 = (0.2, 0, 0.6)
        assert INITIAL_X == (pytest.approx(0.1), 0.0, pytest.approx(0.1))
        assert INITIAL_W == (0.0, 1.0, 0.0)

    def test_consensus_is_exactly_02_on_all_nodes(self):
        res = run_table1()
        assert res.data["exact"] is True
        assert res.data["consensus"] == pytest.approx([0.2, 0.2, 0.2])
        assert res.data["expected"] == EXPECTED_CONSENSUS

    def test_mass_invariants(self):
        res = run_table1()
        assert res.data["mass_x"] == pytest.approx(0.2)  # = v2(t+1)
        assert res.data["mass_w"] == pytest.approx(1.0)

    def test_table_has_two_steps(self):
        res = run_table1()
        assert res.tables[0].row_count == len(PARTNER_SCRIPT) == 2

    def test_step1_matches_worked_text_rows(self):
        # Worked text after step 1: N1 = (0.1, 0.5) beta 0.2.
        from repro.gossip.pushsum import scripted_push_sum

        r = scripted_push_sum(
            list(INITIAL_X), list(INITIAL_W), [list(PARTNER_SCRIPT[0])]
        )
        x, w = r.history[0]
        assert (x[0], w[0]) == (pytest.approx(0.1), pytest.approx(0.5))
        assert x[1] == 0.0 and w[1] == pytest.approx(0.5)
        assert x[2] == pytest.approx(0.1) and w[2] == 0.0

    def test_result_metadata(self):
        res = run_table1()
        assert res.experiment_id == "table1"
        assert res.notes  # fidelity note about the printed table
        assert "v2(t+1)" in res.title
