"""Property-based tests (hypothesis) on the core invariants.

The paper's correctness rests on a handful of algebraic laws; these are
checked on generated instances rather than examples:

* push-sum conserves total (x, w) mass under *any* partner assignment;
* push-sum converges to the true weighted sum on random instances;
* Eq. 1 normalization always yields a row-stochastic matrix, and
  ``S^T v`` preserves probability mass;
* Bloom filters never produce false negatives;
* Chord lookup always reaches the key's true successor;
* distribution samplers stay within their declared supports.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distributions.powerlaw import BoundedZipf
from repro.distributions.query import TwoSegmentZipf
from repro.gossip.convergence import average_relative_error
from repro.gossip.pushsum import push_sum, push_sum_step
from repro.gossip.vector import TripletVector
from repro.network.dht import ChordRing
from repro.storage.bloom import BloomFilter
from repro.trust.matrix import TrustMatrix

COMMON = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def masses(n):
    return hnp.arrays(
        np.float64,
        n,
        elements=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    )


class TestPushSumProperties:
    @COMMON
    @given(data=st.data(), n=st.integers(2, 40))
    def test_mass_conservation_any_partner_assignment(self, data, n):
        x = data.draw(masses(n))
        w = data.draw(masses(n))
        ids = np.arange(n)
        targets = data.draw(
            hnp.arrays(np.int64, n, elements=st.integers(0, n - 1)).filter(
                lambda t: not np.any(t == ids)
            )
        )
        x2, w2 = push_sum_step(x, w, targets)
        assert x2.sum() == pytest.approx(x.sum(), rel=1e-12, abs=1e-12)
        assert w2.sum() == pytest.approx(w.sum(), rel=1e-12, abs=1e-12)
        assert np.all(x2 >= 0) and np.all(w2 >= 0)

    @COMMON
    @given(data=st.data(), n=st.integers(2, 24), seed=st.integers(0, 2**16))
    def test_converges_to_true_weighted_sum(self, data, n, seed):
        x = data.draw(masses(n))
        w = np.zeros(n)
        w[data.draw(st.integers(0, n - 1))] = 1.0
        res = push_sum(x, w, epsilon=1e-9, max_steps=5000, rng=seed)
        finite = res.estimates[np.isfinite(res.estimates)]
        assert finite.size > 0
        assert np.allclose(finite, x.sum(), rtol=1e-4, atol=1e-9)


class TestTripletVectorProperties:
    @COMMON
    @given(
        scores=st.dictionaries(
            st.integers(0, 30), st.floats(0.0, 1.0, allow_nan=False), max_size=10
        ),
        prior=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_halve_merge_identity(self, scores, prior):
        tv = TripletVector.initial(0, scores, {0: prior})
        before = tv.mass()
        sent = tv.halve()
        tv.merge(sent)
        after = tv.mass()
        assert after[0] == pytest.approx(before[0], abs=1e-12)
        assert after[1] == pytest.approx(before[1], abs=1e-12)


class TestTrustMatrixProperties:
    @COMMON
    @given(data=st.data(), n=st.integers(2, 20))
    def test_normalization_always_stochastic(self, data, n):
        raw = data.draw(
            hnp.arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
            )
        )
        S = TrustMatrix.from_dense_raw(raw)
        dense = S.dense()
        assert np.allclose(dense.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(dense >= -1e-12)

    @COMMON
    @given(data=st.data(), n=st.integers(2, 20))
    def test_aggregation_preserves_probability_mass(self, data, n):
        raw = data.draw(
            hnp.arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
            )
        )
        S = TrustMatrix.from_dense_raw(raw)
        v = data.draw(masses(n))
        if v.sum() == 0:
            v = np.full(n, 1.0)
        v = v / v.sum()
        out = S.aggregate(v)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(out >= -1e-12)


class TestBloomProperties:
    @COMMON
    @given(items=st.lists(st.integers(), max_size=150, unique=True))
    def test_no_false_negatives_ever(self, items):
        bf = BloomFilter(max(8, len(items)), 0.05)
        for item in items:
            bf.add(item)
        assert all(item in bf for item in items)


class TestChordProperties:
    @COMMON
    @given(
        nodes=st.sets(st.integers(0, 10_000), min_size=2, max_size=40),
        key=st.integers(),
        start_idx=st.integers(0, 1000),
    )
    def test_lookup_always_reaches_true_owner(self, nodes, key, start_idx):
        ring = ChordRing(sorted(nodes), bits=24)
        start = ring.nodes[start_idx % len(ring.nodes)]
        res = ring.lookup(start, key)
        assert res.owner == ring.owner(key)


class TestDistributionProperties:
    @COMMON
    @given(
        exponent=st.floats(0.0, 3.0, allow_nan=False),
        kmax=st.integers(1, 500),
        seed=st.integers(0, 2**16),
    )
    def test_bounded_zipf_support(self, exponent, kmax, seed):
        d = BoundedZipf(exponent, kmax)
        s = d.sample(200, seed)
        assert s.min() >= 1 and s.max() <= kmax
        assert d.pmf.sum() == pytest.approx(1.0)

    @COMMON
    @given(
        n=st.integers(1, 2000),
        break_rank=st.integers(1, 400),
        seed=st.integers(0, 2**16),
    )
    def test_two_segment_zipf_support(self, n, break_rank, seed):
        d = TwoSegmentZipf(n, break_rank=break_rank)
        ranks = d.sample_ranks(100, seed)
        assert ranks.min() >= 1 and ranks.max() <= n


class TestMetricProperties:
    @COMMON
    @given(data=st.data(), n=st.integers(1, 30))
    def test_average_relative_error_is_nonnegative_and_zero_iff_equal(self, data, n):
        v = data.draw(
            hnp.arrays(
                np.float64,
                n,
                elements=st.floats(1e-6, 1.0, allow_nan=False),
            )
        )
        assert average_relative_error(v, v) == 0.0
        u = data.draw(
            hnp.arrays(
                np.float64,
                n,
                elements=st.floats(1e-6, 1.0, allow_nan=False),
            )
        )
        assert average_relative_error(u, v) >= 0.0


class TestBloomStoreProperties:
    @COMMON
    @given(data=st.data(), n=st.integers(2, 60), bits=st.integers(2, 8))
    def test_stored_ids_always_found_within_bracket_error(self, data, n, bits):
        from repro.storage.reputation_store import BloomReputationStore

        scores = data.draw(
            hnp.arrays(
                np.float64,
                n,
                elements=st.floats(1e-6, 1.0, allow_nan=False),
            )
        )
        scores = scores / scores.sum()
        store = BloomReputationStore(bracket_bits=bits)
        store.build(scores)
        ratio = (max(scores.max(), store.min_score * 10) / store.min_score) ** (
            1.0 / (1 << bits)
        )
        for node in range(n):
            got = store.lookup(node)
            truth = max(scores[node], store.min_score)
            # Within one bracket of truth, up to Bloom false positives
            # promoting to a higher bracket (never demoting below-1):
            assert got >= truth / (ratio * 2)


class TestLedgerMatrixEquivalence:
    @COMMON
    @given(
        data=st.data(),
        n=st.integers(2, 12),
    )
    def test_ledger_and_dense_constructions_agree(self, data, n):
        from repro.trust.feedback import FeedbackLedger
        from repro.trust.matrix import TrustMatrix

        raw = data.draw(
            hnp.arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, 3.0, allow_nan=False),
            )
        )
        np.fill_diagonal(raw, 0.0)
        ledger = FeedbackLedger(n)
        for i in range(n):
            for j in range(n):
                if i != j and raw[i, j] > 0:
                    ledger.set_score(i, j, float(raw[i, j]))
        a = TrustMatrix.from_ledger(ledger).dense()
        b = TrustMatrix.from_dense_raw(raw).dense()
        assert np.allclose(a, b)


class TestStructuredEngineProperty:
    @COMMON
    @given(data=st.data(), n=st.integers(2, 24))
    def test_allreduce_exact_for_any_size_and_matrix(self, data, n):
        from repro.gossip.structured import StructuredAggregationEngine
        from repro.trust.matrix import TrustMatrix

        raw = data.draw(
            hnp.arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, 2.0, allow_nan=False),
            )
        )
        np.fill_diagonal(raw, 0.0)
        S = TrustMatrix.from_dense_raw(raw)
        v = data.draw(masses(n))
        if v.sum() == 0:
            v = np.full(n, 1.0)
        v = v / v.sum()
        res = StructuredAggregationEngine(n).run_cycle(S, v)
        assert np.allclose(res.v_next, res.exact)
        assert res.node_disagreement < 1e-9
