"""Threat scenarios: matched matrices, attack signatures."""

import numpy as np
import pytest

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.errors import ValidationError
from repro.peers.threat_models import (
    build_collusive_scenario,
    build_independent_scenario,
)


class TestIndependent:
    def test_no_malicious_means_identical_matrices(self):
        sc = build_independent_scenario(80, 0.0, rng=0)
        assert np.allclose(sc.S_true.dense(), sc.S_attacked.dense())

    def test_matrices_are_stochastic(self):
        sc = build_independent_scenario(80, 0.3, rng=1)
        for M in (sc.S_true, sc.S_attacked):
            assert np.allclose(M.dense().sum(axis=1), 1.0)

    def test_attack_changes_matrix(self):
        sc = build_independent_scenario(80, 0.3, rng=2)
        assert not np.allclose(sc.S_true.dense(), sc.S_attacked.dense())

    def test_attack_inflates_malicious_reputation(self):
        sc = build_independent_scenario(150, 0.2, rng=3)
        cfg = GossipTrustConfig(n=150, alpha=0.15)
        v = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
        u = exact_global_reputation(sc.S_attacked, cfg, raise_on_budget=False).vector
        bad = sc.population.malicious_nodes()
        # Dishonest feedback boosts the attackers' own aggregate share.
        assert u[bad].sum() > v[bad].sum()

    def test_transactions_counted(self):
        sc = build_independent_scenario(50, 0.1, rng=4)
        assert sc.transactions > 0
        assert sc.n == 50

    def test_deterministic(self):
        a = build_independent_scenario(60, 0.2, rng=5)
        b = build_independent_scenario(60, 0.2, rng=5)
        assert np.allclose(a.S_attacked.dense(), b.S_attacked.dense())


class TestCollusive:
    def test_group_structure(self):
        sc = build_collusive_scenario(100, 0.1, group_size=5, rng=0)
        assert sc.population.group_count() == 2

    def test_colluders_gain_from_boosting(self):
        sc = build_collusive_scenario(150, 0.1, group_size=5, rng=1)
        cfg = GossipTrustConfig(n=150, alpha=0.15)
        v = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
        u = exact_global_reputation(sc.S_attacked, cfg, raise_on_budget=False).vector
        bad = sc.population.malicious_nodes()
        assert u[bad].sum() > 2 * v[bad].sum()

    def test_boost_volume_scales_with_parameter(self):
        lo = build_collusive_scenario(80, 0.1, group_size=4, collusion_boost=1, rng=2)
        hi = build_collusive_scenario(80, 0.1, group_size=4, collusion_boost=8, rng=2)
        assert hi.transactions > lo.transactions

    def test_rejects_tiny_group(self):
        with pytest.raises(ValidationError):
            build_collusive_scenario(50, 0.1, group_size=1)
