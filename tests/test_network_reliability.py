"""ReliableTransport: acks, retries, give-up suspicion, dedup."""

import pytest

from repro.errors import ValidationError
from repro.network.reliability import (
    ACK_KIND,
    RELIABLE_KIND,
    ReliableEnvelope,
    ReliableTransport,
)
from repro.network.transport import Message, Transport
from repro.sim.engine import Simulator


def build(loss=0.0, latency=0.5, seed=0, **kwargs):
    sim = Simulator()
    transport = Transport(sim, latency=latency, loss_rate=loss, rng=seed)
    delivered = []
    suspected = []
    reliable = ReliableTransport(
        transport,
        on_deliver=lambda msg, kind, payload: delivered.append((msg.src, msg.dst, kind, payload)),
        on_give_up=lambda src, dst, kind: suspected.append((src, dst, kind)),
        **kwargs,
    )
    # Route everything (envelopes at dst, acks back at src) into the wrapper.
    for node in range(16):
        transport.register(node, reliable.handle)
    return sim, transport, reliable, delivered, suspected


class TestValidation:
    def test_ack_timeout_must_exceed_round_trip(self):
        sim = Simulator()
        transport = Transport(sim, latency=1.0)
        with pytest.raises(ValidationError, match="round trip"):
            ReliableTransport(transport, ack_timeout=1.0)

    def test_default_timeout_covers_round_trip(self):
        sim = Simulator()
        transport = Transport(sim, latency=1.0)
        r = ReliableTransport(transport)
        assert r.ack_timeout > 3.0 * transport.latency

    def test_negative_retries_rejected(self):
        sim = Simulator()
        transport = Transport(sim, latency=0.1)
        with pytest.raises(ValidationError, match="max_retries"):
            ReliableTransport(transport, max_retries=-1)

    def test_backoff_below_one_rejected(self):
        sim = Simulator()
        transport = Transport(sim, latency=0.1)
        with pytest.raises(ValidationError, match="backoff"):
            ReliableTransport(transport, backoff=0.5)


class TestHappyPath:
    def test_single_send_delivers_and_acks(self):
        sim, _tr, reliable, delivered, suspected = build()
        reliable.send(0, 1, {"hello": 1}, kind="probe")
        sim.run()
        assert delivered == [(0, 1, "probe", {"hello": 1})]
        assert reliable.acked == 1
        assert reliable.pending_count == 0
        assert reliable.retries == 0
        assert suspected == []

    def test_many_sends_all_acked(self):
        sim, _tr, reliable, delivered, _ = build()
        for i in range(10):
            reliable.send(i % 4, (i + 1) % 4, i, kind="data")
        sim.run()
        assert reliable.acked == 10
        assert len(delivered) == 10
        assert reliable.pending_count == 0

    def test_non_reliable_traffic_not_consumed(self):
        sim, transport, reliable, _, _ = build()
        msg = Message(src=0, dst=1, payload=None, kind="gossip")
        assert reliable.handle(msg) is False


class TestRetry:
    def test_total_loss_exhausts_retries_and_suspects(self):
        sim, _tr, reliable, delivered, suspected = build(loss=1.0, max_retries=2)
        reliable.send(0, 1, None, kind="probe")
        sim.run()
        assert delivered == []
        assert reliable.retries == 2  # attempts beyond the first
        assert reliable.gave_up == 1
        assert suspected == [(0, 1, "probe")]
        assert reliable.pending_count == 0

    def test_zero_retries_gives_up_after_one_attempt(self):
        sim, _tr, reliable, _, suspected = build(loss=1.0, max_retries=0)
        reliable.send(0, 1, None, kind="probe")
        sim.run()
        assert reliable.retries == 0
        assert suspected == [(0, 1, "probe")]

    def test_lossy_link_eventually_delivers(self):
        sim, _tr, reliable, delivered, _ = build(loss=0.5, seed=7, max_retries=5)
        for i in range(12):
            reliable.send(0, 1, i, kind="data")
        sim.run()
        # With 6 attempts at 50% loss virtually everything lands.
        assert len(delivered) >= 10
        assert reliable.retries > 0

    def test_backoff_stretches_each_wait(self):
        sim, _tr, reliable, _, _ = build(loss=1.0, max_retries=2, backoff=2.0)
        reliable.send(0, 1, None)
        t0 = sim.now
        sim.run()
        # Waits: T + 2T + 4T with T = ack_timeout.
        assert sim.now - t0 == pytest.approx(7.0 * reliable.ack_timeout)

    def test_overhead_counts_retries_and_acks(self):
        sim, _tr, reliable, _, _ = build(loss=0.4, seed=3, max_retries=4)
        for i in range(8):
            reliable.send(0, 1, i)
        sim.run()
        assert reliable.overhead_messages() == reliable.retries + reliable.acks_sent


class TestDedup:
    def _envelope_msg(self, msg_id, payload="p"):
        return Message(
            src=0,
            dst=1,
            payload=ReliableEnvelope(msg_id=msg_id, kind="data", payload=payload),
            kind=RELIABLE_KIND,
        )

    def test_duplicate_envelope_acked_but_delivered_once(self):
        sim, _tr, reliable, delivered, _ = build()
        msg = self._envelope_msg(1000)
        assert reliable.handle(msg) is True
        assert reliable.handle(msg) is True
        assert len(delivered) == 1
        assert reliable.duplicates == 1
        assert reliable.acks_sent == 2  # duplicate still re-acked

    def test_late_retransmit_of_older_id_still_delivers_once_each(self):
        sim, _tr, reliable, delivered, _ = build()
        # Newer id arrives first; the older retransmit must not be
        # mistaken for a duplicate (regression: max-id dedup).
        reliable.handle(self._envelope_msg(2001, payload="new"))
        reliable.handle(self._envelope_msg(2000, payload="old"))
        assert [p for (_, _, _, p) in delivered] == ["new", "old"]
        assert reliable.duplicates == 0

    def test_stray_ack_is_consumed_silently(self):
        sim, _tr, reliable, _, _ = build()
        assert reliable.handle(Message(src=1, dst=0, payload=999, kind=ACK_KIND))
        assert reliable.acked == 0


class TestTimerOwnership:
    def test_stale_timer_does_not_double_retry(self):
        """An old attempt's timer firing after a resend must be a no-op."""
        sim, _tr, reliable, _, suspected = build(loss=1.0, max_retries=3)
        reliable.send(0, 1, None)
        sim.run()
        # Exactly max_retries resends, one give-up — no timer raced.
        assert reliable.retries == 3
        assert reliable.gave_up == 1
        assert len(suspected) == 1
