"""Smoke-scale runs of every experiment, with paper-shape assertions.

These run the same code paths as the full benchmarks at reduced scale,
and assert the *qualitative* claims (who wins, what grows) rather than
absolute values.
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", quick=True)


@pytest.fixture(scope="module")
def table3():
    return run_experiment("table3", quick=True)


@pytest.fixture(scope="module")
def fig4a():
    return run_experiment("fig4a", quick=True)


@pytest.fixture(scope="module")
def fig4b():
    return run_experiment("fig4b", quick=True)


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5", quick=True)


class TestFig3Shape:
    def test_steps_grow_as_epsilon_shrinks(self, fig3):
        for series in fig3.series:
            # x descending in epsilon order given (1e-2, 1e-3).
            assert series.y[-1] > series.y[0] - 2

    def test_larger_network_needs_no_fewer_steps(self, fig3):
        small = fig3.series_by_label("n=200")
        large = fig3.series_by_label("n=400")
        assert large.y[0] >= small.y[0]

    def test_table_rows_complete(self, fig3):
        assert fig3.tables[0].row_count == 4  # 2 sizes x 2 epsilons


class TestTable3Shape:
    def test_tighter_settings_cost_more(self, table3):
        rows = table3.data["rows"]
        tight = rows["1e-05/0.0001"]
        loose = rows["0.001/0.01"]
        assert tight["cycles"] >= loose["cycles"]
        assert tight["steps"] > loose["steps"]

    def test_tighter_settings_are_more_accurate(self, table3):
        rows = table3.data["rows"]
        assert rows["1e-05/0.0001"]["gossip_error"] < rows["0.001/0.01"]["gossip_error"]
        assert (
            rows["1e-05/0.0001"]["aggregation_error"]
            < rows["0.001/0.01"]["aggregation_error"]
        )

    def test_gossip_error_well_below_epsilon(self, table3):
        rows = table3.data["rows"]
        assert rows["0.0001/0.001"]["gossip_error"] < 1e-4


class TestFig4Shape:
    def test_error_grows_with_malicious_fraction(self, fig4a):
        for series in fig4a.series:
            assert series.y[-1] > series.y[0]

    def test_power_nodes_not_harmful_at_smoke_scale(self, fig4a):
        # The strict "alpha=0.15 beats alpha=0" claim needs the paper's
        # scale (n=1000 -> q=10 anchors dilute selection mistakes) and
        # is asserted by benchmarks/bench_fig4.py; at smoke scale (q=2)
        # we only check the mechanism doesn't blow the error up.
        base = fig4a.data["alpha=0"][0.2]
        power = fig4a.data["alpha=0.15"][0.2]
        assert power < 1.5 * base

    def test_no_attack_no_error(self, fig4a):
        for label in ("alpha=0", "alpha=0.15"):
            assert fig4a.data[label][0.0] < 1e-6

    def test_collusive_power_nodes_reduce_error(self, fig4b):
        plain = fig4b.data["5% colluders, alpha=0"]
        power = fig4b.data["5% colluders, alpha=0.15"]
        for gs in plain:
            assert power[gs] < plain[gs]


class TestFig5Shape:
    def test_gossiptrust_beats_notrust_under_attack(self, fig5):
        gt = fig5.data["GossipTrust"][0.2]
        nt = fig5.data["NoTrust"][0.2]
        assert gt > nt

    def test_attack_free_world_equal_policies(self, fig5):
        gt = fig5.data["GossipTrust"][0.0]
        nt = fig5.data["NoTrust"][0.0]
        assert gt == pytest.approx(nt, abs=0.05)


class TestExtensionExperiments:
    def test_fault_runs_and_reports(self):
        res = run_experiment("fault", quick=True)
        assert res.data["loss/0"] < res.data["loss/0.2"]

    def test_storage_runs_and_reports(self):
        res = run_experiment("storage", quick=True)
        assert res.data["6"]["mean_rel_error"] < res.data["4"]["mean_rel_error"]

    def test_overhead_runs_and_reports(self):
        res = run_experiment("overhead", quick=True)
        for n_key, row in res.data.items():
            assert row["gossip_messages"] < row["eigentrust_messages"]
