"""Quality-of-feedback scoring and vote-modulated aggregation."""

import numpy as np
import pytest

from repro.core.config import GossipTrustConfig
from repro.errors import ValidationError
from repro.peers.threat_models import build_independent_scenario
from repro.trust.matrix import TrustMatrix
from repro.trust.qof import QofWeightedAggregation, feedback_quality


@pytest.fixture
def endorse_matrix():
    """4 peers: 0 and 1 endorse the reputable 0/1; 2 endorses distrusted 3."""
    raw = np.array(
        [
            [0.0, 1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    )
    return TrustMatrix.from_dense_raw(raw)


class TestFeedbackQuality:
    def test_endorsing_reputable_peers_scores_high(self, endorse_matrix):
        v = np.array([0.4, 0.4, 0.1, 0.1])
        qof = feedback_quality(endorse_matrix, v)
        assert qof[0] == pytest.approx(1.0)  # endorses the top peer
        assert qof[2] < qof[0]  # endorses a distrusted peer

    def test_inverted_rater_scores_lowest(self, endorse_matrix):
        v = np.array([0.45, 0.45, 0.05, 0.05])
        qof = feedback_quality(endorse_matrix, v)
        assert np.argmin(qof) in (2, 3)

    def test_sharpness_widens_separation(self, endorse_matrix):
        v = np.array([0.4, 0.4, 0.1, 0.1])
        soft = feedback_quality(endorse_matrix, v, sharpness=1.0)
        hard = feedback_quality(endorse_matrix, v, sharpness=3.0)
        assert (soft[0] - soft[2]) < (hard[0] - hard[2])

    def test_scores_in_unit_interval(self, random_S, rng):
        v = rng.random(random_S.n)
        v /= v.sum()
        qof = feedback_quality(random_S, v)
        assert np.all(qof >= 0) and np.all(qof <= 1)
        assert qof.max() == pytest.approx(1.0)

    def test_degenerate_zero_reputation(self, endorse_matrix):
        qof = feedback_quality(endorse_matrix, np.zeros(4))
        assert np.all(qof == 1.0)

    def test_validation(self, endorse_matrix):
        with pytest.raises(ValidationError):
            feedback_quality(endorse_matrix, np.ones(3))
        with pytest.raises(ValidationError):
            feedback_quality(endorse_matrix, np.ones(4) / 4, sharpness=-1.0)

    def test_discriminates_attackers_under_clean_consensus(self):
        from repro.core.aggregation import exact_global_reputation

        sc = build_independent_scenario(200, 0.3, rng=0)
        cfg = GossipTrustConfig(n=200, alpha=0.0, max_cycles=60)
        v_true = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
        qof = feedback_quality(sc.S_attacked, v_true)
        good = sc.population.honest_nodes()
        bad = sc.population.malicious_nodes()
        assert qof[good].mean() > qof[bad].mean()


class TestQofWeightedAggregation:
    def test_returns_probability_vector_and_trajectory(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0)
        res = QofWeightedAggregation(cfg, rounds=2).run(random_S)
        assert res.reputation.sum() == pytest.approx(1.0)
        assert len(res.trajectory) == 3  # round 0 + 2 refinements
        assert res.rounds == 2

    def test_honest_matrix_barely_changes(self, random_S):
        """With no attack the weighting must not distort the ranking."""
        from repro.metrics.errors import kendall_tau

        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0)
        res = QofWeightedAggregation(cfg, rounds=2).run(random_S)
        assert kendall_tau(res.trajectory[0], res.reputation) > 0.7

    def test_reduces_error_under_heavy_attack(self):
        from repro.core.aggregation import exact_global_reputation
        from repro.metrics.errors import rms_relative_error

        n = 300
        plain_vals, qof_vals = [], []
        for seed in range(2):
            sc = build_independent_scenario(n, 0.4, rng=seed)
            cfg = GossipTrustConfig(n=n, alpha=0.0, max_cycles=80, seed=seed)
            v = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
            u = exact_global_reputation(
                sc.S_attacked, cfg, raise_on_budget=False
            ).vector
            res = QofWeightedAggregation(cfg, rounds=3).run(sc.S_attacked)
            plain_vals.append(rms_relative_error(v, u, cap=10.0))
            qof_vals.append(rms_relative_error(v, res.reputation, cap=10.0))
        assert np.mean(qof_vals) < np.mean(plain_vals)

    def test_reference_seeding_accepted(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0)
        ref = np.full(random_S.n, 1.0 / random_S.n)
        res = QofWeightedAggregation(cfg, rounds=1).run(random_S, reference=ref)
        assert res.reputation.shape == (random_S.n,)

    def test_validation(self):
        with pytest.raises(ValidationError):
            QofWeightedAggregation(rounds=0)
        with pytest.raises(ValidationError):
            QofWeightedAggregation(min_weight=1.5)
