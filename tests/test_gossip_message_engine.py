"""Message-level gossip engine: fidelity and fault behavior."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.message_engine import MessageGossipEngine
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.trust.matrix import TrustMatrix


def build(n=24, loss=0.0, seed=0, epsilon=1e-5, **engine_kwargs):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=seed), rng=seed + 1)
    transport = Transport(sim, latency=0.5, loss_rate=loss, rng=seed + 2)
    engine = MessageGossipEngine(
        sim,
        transport,
        overlay,
        epsilon=epsilon,
        round_interval=1.0,
        rng=seed + 3,
        **engine_kwargs,
    )
    return sim, overlay, transport, engine


def rows_and_prior(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    np.fill_diagonal(raw, 0)
    for i in range(n):
        if raw[i].sum() == 0:
            raw[i, (i + 1) % n] = 1.0
    S = TrustMatrix.from_dense_raw(raw)
    csr = S.sparse()
    rows = []
    for i in range(n):
        s, e = csr.indptr[i], csr.indptr[i + 1]
        rows.append(dict(zip(csr.indices[s:e].tolist(), csr.data[s:e].tolist())))
    return rows, np.full(n, 1.0 / n)


class TestLossless:
    def test_converges_to_exact_product(self):
        n = 24
        _sim, _ov, _tr, engine = build(n)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.converged
        assert res.gossip_error < 1e-3
        assert np.allclose(res.v_next, res.exact, rtol=1e-2, atol=1e-6)

    def test_no_mass_lost_without_faults(self):
        n = 16
        _sim, _ov, _tr, engine = build(n)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.mass_lost_fraction == pytest.approx(0.0, abs=1e-9)

    def test_all_nodes_agree(self):
        n = 16
        _sim, _ov, _tr, engine = build(n, epsilon=1e-7)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        finite = np.where(np.isfinite(res.node_estimates), res.node_estimates, np.nan)
        spread = np.nanmax(finite, axis=0) - np.nanmin(finite, axis=0)
        assert np.nanmax(spread) < 1e-4

    def test_message_accounting(self):
        n = 12
        _sim, _ov, tr, engine = build(n)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        # One message per live node per round.
        assert res.messages_sent == n * res.steps
        assert res.messages_dropped == 0


class TestFaults:
    def test_loss_costs_accuracy_but_not_validity(self):
        n = 24
        _sim, _ov, _tr, engine = build(n, loss=0.1)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.messages_dropped > 0
        assert res.mass_lost_fraction > 0
        assert np.all(np.isfinite(res.v_next))
        # Ratio robustness: error stays bounded even with 10% loss.
        assert res.gossip_error < 1.0

    def test_more_loss_more_mass_lost(self):
        n = 24
        losses = {}
        for rate in (0.05, 0.3):
            _sim, _ov, _tr, engine = build(n, loss=rate)
            rows, v = rows_and_prior(n)
            losses[rate] = engine.run_cycle(rows, v).mass_lost_fraction
        assert losses[0.3] > losses[0.05]

    def test_departed_node_mass_vanishes_gracefully(self):
        n = 16
        sim, overlay, _tr, engine = build(n)
        rows, v = rows_and_prior(n)
        sim.call_in(2.5, overlay.leave, 3)
        res = engine.run_cycle(rows, v)
        assert 3 not in res.live_nodes.tolist()
        assert np.all(np.isfinite(res.v_next))


class TestConfiguration:
    def test_round_interval_must_exceed_latency(self):
        sim = Simulator()
        overlay = Overlay(random_graph(8, avg_degree=3.0, rng=0))
        transport = Transport(sim, latency=2.0)
        with pytest.raises(ValidationError):
            MessageGossipEngine(sim, transport, overlay, round_interval=1.0)

    def test_row_count_must_match(self):
        n = 8
        _sim, _ov, _tr, engine = build(n)
        with pytest.raises(ValidationError):
            engine.run_cycle([{}] * (n - 1), np.full(n, 1.0 / n))

    def test_budget_raises_when_asked(self):
        n = 16
        _sim, _ov, _tr, engine = build(n, epsilon=1e-12, max_rounds=2)
        rows, v = rows_and_prior(n)
        with pytest.raises(ConvergenceError):
            engine.run_cycle(rows, v, raise_on_budget=True)

    def test_neighbors_only_mode_converges(self):
        n = 24
        _sim, _ov, _tr, engine = build(n, neighbors_only=True)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.converged
        assert res.gossip_error < 0.05


class TestFinalize:
    def test_pairs_match_estimates(self):
        n = 16
        _sim, _ov, _tr, engine = build(n, epsilon=1e-6)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        pairs = engine.finalize()
        assert set(pairs) == set(res.live_nodes.tolist())
        node0 = pairs[res.live_nodes[0]]
        # Pair scores approximate the exact next vector.
        for j, score in node0.items():
            assert score == pytest.approx(res.exact[j], rel=0.05, abs=1e-6)

    def test_bloom_store_variant(self):
        n = 16
        _sim, _ov, _tr, engine = build(n, epsilon=1e-6)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        stores = engine.finalize(bracket_bits=8)
        from repro.storage.reputation_store import BloomReputationStore

        store = stores[res.live_nodes[0]]
        assert isinstance(store, BloomReputationStore)
        # Quantized lookups track the exact scores within bracket error.
        top = int(res.exact.argmax())
        assert store.lookup(top) == pytest.approx(res.exact[top], rel=0.5)

    def test_departed_nodes_excluded(self):
        n = 16
        sim, overlay, _tr, engine = build(n)
        rows, v = rows_and_prior(n)
        sim.call_in(2.5, overlay.leave, 5)
        engine.run_cycle(rows, v)
        pairs = engine.finalize()
        assert 5 not in pairs


class TestBatchedConvergence:
    """Unit semantics of the one-pass population convergence test."""

    def _mats(self, *rows):
        return np.asarray(rows, dtype=np.float64)

    def test_empty_population_is_converged(self):
        from repro.gossip.message_engine import _batched_converged

        assert _batched_converged((), np.empty((0, 2)), (), np.empty((0, 2)), 1e-4)

    def test_within_epsilon_converges(self):
        from repro.gossip.message_engine import _batched_converged

        prev = self._mats([1.0, 2.0], [3.0, 4.0])
        cur = prev * (1.0 + 5e-5)
        assert _batched_converged((0, 1), cur, (0, 1), prev, 1e-4)
        assert not _batched_converged((0, 1), prev * 1.01, (0, 1), prev, 1e-4)

    def test_node_not_sampled_last_round_blocks(self):
        from repro.gossip.message_engine import _batched_converged

        prev = self._mats([1.0, 2.0])
        cur = self._mats([1.0, 2.0], [1.0, 2.0])
        assert not _batched_converged((0, 1), cur, (0,), prev, 1e-4)

    def test_prev_rows_realigned_by_id(self):
        from repro.gossip.message_engine import _batched_converged

        prev = self._mats([9.0, 9.0], [1.0, 2.0])
        cur = self._mats([1.0, 2.0])
        # node 7's previous row sits at index 1 of prev
        assert _batched_converged((7,), cur, (3, 7), prev, 1e-4)

    def test_finite_pattern_change_blocks(self):
        from repro.gossip.message_engine import _batched_converged

        prev = self._mats([1.0, np.nan])
        cur = self._mats([1.0, 1.0])  # newly heard-of peer: still spreading
        assert not _batched_converged((0,), cur, (0,), prev, 1e-4)

    def test_all_nan_row_blocks(self):
        from repro.gossip.message_engine import _batched_converged

        prev = self._mats([np.nan, np.nan])
        cur = self._mats([np.nan, np.nan])
        assert not _batched_converged((0,), cur, (0,), prev, 1e-4)

    def test_inf_estimates_compare_stable(self):
        """w == 0, x > 0 -> inf flows from estimates_array into the
        convergence test and the disagreement metric without blowing up."""
        from repro.gossip.message_engine import _batched_converged, _disagreement
        from repro.gossip.vector import TripletVector

        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        est = tv.estimates_array(3)
        assert est[1] == np.inf
        mat = est[None, :]
        # identical inf pattern on both sides: converged (change is 0)
        assert _batched_converged((0,), mat, (0,), mat.copy(), 1e-4)
        # inf columns are excluded from the finite spread
        assert _disagreement(np.vstack([mat, mat])) == pytest.approx(0.0)

    def test_disagreement_all_nonfinite_is_inf(self):
        from repro.gossip.message_engine import _disagreement

        assert _disagreement(np.full((2, 2), np.nan)) == np.inf
        assert _disagreement(np.empty((0, 3))) == np.inf
