"""Pretrust vectors and greedy-factor mixing."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.trust.pretrust import PretrustVector, uniform_pretrust


class TestConstruction:
    def test_mass_split_among_members(self):
        p = PretrustVector(4, [1, 3])
        assert p.vector.tolist() == [0.0, 0.5, 0.0, 0.5]

    def test_empty_members_is_uniform(self):
        p = PretrustVector(4)
        assert p.vector.tolist() == [0.25] * 4
        assert uniform_pretrust(4).vector.tolist() == [0.25] * 4

    def test_members_frozen(self):
        p = PretrustVector(5, [0, 2])
        assert p.members == frozenset({0, 2})

    def test_out_of_range_member_rejected(self):
        with pytest.raises(ValidationError):
            PretrustVector(3, [3])
        with pytest.raises(ValidationError):
            PretrustVector(0)

    def test_with_members_builds_new(self):
        p = PretrustVector(4, [0])
        q = p.with_members([1, 2])
        assert q.members == frozenset({1, 2})
        assert p.members == frozenset({0})

    def test_vector_is_copy(self):
        p = PretrustVector(3, [0])
        v = p.vector
        v[0] = 0.0
        assert p.vector[0] == 1.0


class TestMixing:
    def test_mix_formula(self):
        p = PretrustVector(2, [0])
        agg = np.array([0.4, 0.6])
        out = p.mix(agg, 0.5)
        assert out.tolist() == pytest.approx([0.7, 0.3])

    def test_alpha_zero_is_identity(self):
        p = PretrustVector(3, [1])
        agg = np.array([0.2, 0.3, 0.5])
        assert p.mix(agg, 0.0).tolist() == agg.tolist()

    def test_alpha_one_is_pretrust(self):
        p = PretrustVector(3, [1])
        out = p.mix(np.array([0.2, 0.3, 0.5]), 1.0)
        assert out.tolist() == [0.0, 1.0, 0.0]

    def test_mix_preserves_probability_mass(self):
        p = PretrustVector(5, [0, 4])
        agg = np.full(5, 0.2)
        assert p.mix(agg, 0.15).sum() == pytest.approx(1.0)

    def test_mix_validates_alpha_and_shape(self):
        p = PretrustVector(3, [0])
        with pytest.raises(ValidationError):
            p.mix(np.ones(3) / 3, 1.5)
        with pytest.raises(ValidationError):
            p.mix(np.ones(4) / 4, 0.1)
