"""File catalog: popularity law, placement, liveness filtering."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workload.files import FileCatalog


@pytest.fixture(scope="module")
def catalog():
    return FileCatalog(2000, 100, rng=0)


class TestCopies:
    def test_every_file_has_at_least_one_copy(self, catalog):
        for f in (1, 500, 2000):
            assert catalog.copies(f) >= 1

    def test_popular_files_have_more_copies(self, catalog):
        head = np.mean([catalog.copies(f) for f in range(1, 21)])
        tail = np.mean([catalog.copies(f) for f in range(1981, 2001)])
        assert head > 3 * tail

    def test_copies_bounded_by_peers(self):
        cat = FileCatalog(50, 10, mean_copies=30.0, rng=1)
        for f in range(1, 51):
            assert cat.copies(f) <= 10

    def test_total_copies_scales_with_mean(self):
        lo = FileCatalog(500, 200, mean_copies=2.0, rng=2)
        hi = FileCatalog(500, 200, mean_copies=8.0, rng=2)
        assert hi.total_copies > 2 * lo.total_copies


class TestOwnership:
    def test_owners_are_valid_unique_peers(self, catalog):
        own = catalog.owners(1)
        assert own.size == catalog.copies(1)
        assert len(set(own.tolist())) == own.size
        assert own.min() >= 0
        assert own.max() < 100

    def test_owners_returns_copy(self, catalog):
        a = catalog.owners(1)
        a[:] = -1
        assert catalog.owners(1).min() >= 0

    def test_owners_alive_filters(self, catalog):
        own = catalog.owners(1)
        mask = np.ones(100, dtype=bool)
        mask[own[0]] = False
        alive = catalog.owners_alive(1, mask)
        assert own[0] not in alive
        assert alive.size == own.size - 1

    def test_placement_skewed_toward_sharers(self, catalog):
        # Free riders (zero Saroiu weight) own nothing.
        owned_by = np.zeros(100, dtype=int)
        for f in range(1, 2001):
            for p in catalog.owners(f):
                owned_by[p] += 1
        assert (owned_by == 0).sum() > 0  # free riders exist
        assert owned_by.max() > 5 * max(1, np.median(owned_by[owned_by > 0]))

    def test_files_of_inverts_owners(self, catalog):
        peer = int(catalog.owners(1)[0])
        assert 1 in catalog.files_of(peer).tolist()


class TestValidation:
    def test_rank_bounds(self, catalog):
        with pytest.raises(ValidationError):
            catalog.copies(0)
        with pytest.raises(ValidationError):
            catalog.owners(2001)
        with pytest.raises(ValidationError):
            catalog.files_of(100)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            FileCatalog(0, 10)
        with pytest.raises(ValidationError):
            FileCatalog(10, 0)
        with pytest.raises(ValidationError):
            FileCatalog(10, 10, mean_copies=0.5)

    def test_deterministic(self):
        a = FileCatalog(100, 20, rng=5)
        b = FileCatalog(100, 20, rng=5)
        for f in (1, 50, 100):
            assert np.array_equal(a.owners(f), b.owners(f))
