"""Synthetic trust-matrix generation (§6.1 base setting)."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedEigenvector
from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.errors import ValidationError
from repro.experiments.synthetic import synthetic_trust_matrix


class TestSyntheticMatrix:
    def test_rows_stochastic(self):
        S = synthetic_trust_matrix(100, rng=0)
        assert np.allclose(S.dense().sum(axis=1), 1.0)

    def test_no_self_ratings(self):
        S = synthetic_trust_matrix(50, rng=1)
        assert np.all(np.diag(S.dense()) == 0.0)

    def test_out_degrees_follow_feedback_distribution(self):
        n = 400
        S = synthetic_trust_matrix(n, rng=2)
        degrees = np.asarray((S.sparse() != 0).sum(axis=1)).ravel()
        # Bounded by the paper's d_max, mean in the d_avg ballpark.
        assert degrees.max() <= 200
        assert degrees.mean() == pytest.approx(20.0, rel=0.35)

    def test_custom_feedback_distribution(self):
        dist = FeedbackCountDistribution(d_max=5, d_avg=2.0)
        S = synthetic_trust_matrix(60, feedback_dist=dist, rng=3)
        degrees = np.asarray((S.sparse() != 0).sum(axis=1)).ravel()
        assert degrees.max() <= 5

    def test_deterministic(self):
        a = synthetic_trust_matrix(40, rng=7)
        b = synthetic_trust_matrix(40, rng=7)
        assert np.allclose(a.dense(), b.dense())

    def test_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            synthetic_trust_matrix(1)

    def test_oracle_computable_on_output(self):
        S = synthetic_trust_matrix(80, rng=4)
        v = CentralizedEigenvector(S).compute()
        assert v.sum() == pytest.approx(1.0)


class TestLazyIterationOnPeriodicChains:
    """The oracle must handle chains plain power iteration cannot."""

    def test_two_cycle_chain(self):
        # 0 <-> 1 strictly alternating: plain power iteration oscillates
        # forever; the lazy chain converges to the true stationary (.5, .5).
        S = np.array([[0.0, 1.0], [1.0, 0.0]])
        v = CentralizedEigenvector(S).compute(cross_check=True)
        assert v.tolist() == pytest.approx([0.5, 0.5])

    def test_three_cycle_chain(self):
        S = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        v = CentralizedEigenvector(S).compute(cross_check=True)
        assert v.tolist() == pytest.approx([1 / 3] * 3)

    def test_lazy_fixed_point_unchanged_on_aperiodic_chain(self, random_S):
        # Laziness must not move the answer where plain iteration works.
        v = CentralizedEigenvector(random_S).compute()
        assert np.allclose(random_S.aggregate(v), v, atol=1e-9)
