"""Structured (DHT-ordered) all-reduce aggregation."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.structured import StructuredAggregationEngine


class TestExactness:
    @pytest.mark.parametrize("n", [2, 3, 16, 37, 100, 128])
    def test_exact_at_any_size(self, n, rng):
        raw = rng.random((n, n))
        np.fill_diagonal(raw, 0)
        from repro.trust.matrix import TrustMatrix

        S = TrustMatrix.from_dense_raw(raw)
        engine = StructuredAggregationEngine(n)
        v = rng.random(n)
        v /= v.sum()
        res = engine.run_cycle(S, v)
        assert np.allclose(res.v_next, res.exact)
        assert res.node_disagreement < 1e-12
        assert res.gossip_error == 0.0
        assert res.converged

    def test_rounds_are_log2_n(self):
        for n in (16, 100, 1000):
            engine = StructuredAggregationEngine(n)
            assert engine.rounds_per_cycle == math.ceil(math.log2(n))

    def test_messages_accounted(self, random_S):
        engine = StructuredAggregationEngine(random_S.n)
        v = np.full(random_S.n, 1.0 / random_S.n)
        engine.run_cycle(random_S, v)
        assert engine.messages == random_S.n * engine.rounds_per_cycle
        engine.clear_stats()
        assert engine.messages == 0
        assert engine.cycle_steps == []

    def test_faster_than_unstructured(self, random_S):
        n = random_S.n
        v = np.full(n, 1.0 / n)
        structured = StructuredAggregationEngine(n)
        s_res = structured.run_cycle(random_S, v)
        gossip = SynchronousGossipEngine(n, epsilon=1e-4, mode="full", rng=0)
        g_res = gossip.run_cycle(random_S, v)
        assert s_res.steps < g_res.steps

    def test_matches_unstructured_target(self, random_S):
        v = np.full(random_S.n, 1.0 / random_S.n)
        s_res = StructuredAggregationEngine(random_S.n).run_cycle(random_S, v)
        g_res = SynchronousGossipEngine(
            random_S.n, epsilon=1e-7, mode="full", rng=1
        ).run_cycle(random_S, v)
        assert np.allclose(s_res.v_next, g_res.v_next, rtol=1e-3, atol=1e-8)


class TestValidation:
    def test_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            StructuredAggregationEngine(1)

    def test_rejects_shape_mismatch(self, random_S):
        engine = StructuredAggregationEngine(random_S.n + 1)
        with pytest.raises(ValidationError):
            engine.run_cycle(random_S, np.full(random_S.n + 1, 0.1))

    def test_plugs_into_gossiptrust(self, random_S):
        """The structured engine satisfies the CycleEngine protocol."""
        from repro.core.config import GossipTrustConfig
        from repro.core.gossiptrust import GossipTrust

        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15, seed=0)
        system = GossipTrust(
            random_S, cfg, engine=StructuredAggregationEngine(random_S.n)
        )
        result = system.run()
        assert result.converged
        assert result.cycle_results[0].mode == "structured"
        # Exact per-cycle products: aggregation error is pure float noise.
        assert result.aggregation_error < 1e-9
