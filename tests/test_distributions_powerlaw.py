"""Bounded Zipf / power-law samplers: bounds, means, determinism."""

import numpy as np
import pytest

from repro.distributions.powerlaw import (
    BoundedZipf,
    FeedbackCountDistribution,
    powerlaw_weights,
    solve_zipf_exponent_for_mean,
)
from repro.errors import ValidationError


class TestPowerlawWeights:
    def test_monotone_decreasing(self):
        w = powerlaw_weights(100, 1.2)
        assert np.all(np.diff(w) < 0)

    def test_exponent_zero_is_uniform(self):
        w = powerlaw_weights(10, 0.0)
        assert np.allclose(w, 1.0)

    def test_first_weight_is_one(self):
        assert powerlaw_weights(5, 2.3)[0] == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            powerlaw_weights(0, 1.0)
        with pytest.raises(ValidationError):
            powerlaw_weights(10, -0.5)


class TestSolveExponent:
    @pytest.mark.parametrize("target", [2.0, 5.0, 20.0, 80.0])
    def test_realizes_target_mean(self, target):
        a = solve_zipf_exponent_for_mean(target, 200)
        assert BoundedZipf(a, 200).mean == pytest.approx(target, rel=1e-6)

    def test_rejects_unattainable_means(self):
        with pytest.raises(ValidationError):
            solve_zipf_exponent_for_mean(1.0, 200)  # mean > 1 required
        with pytest.raises(ValidationError):
            solve_zipf_exponent_for_mean(150.0, 200)  # above (kmax+1)/2

    def test_larger_mean_needs_smaller_exponent(self):
        a_small = solve_zipf_exponent_for_mean(5.0, 200)
        a_large = solve_zipf_exponent_for_mean(50.0, 200)
        assert a_large < a_small


class TestBoundedZipf:
    def test_samples_within_support(self, rng):
        dist = BoundedZipf(1.1, 50)
        s = dist.sample(10_000, rng)
        assert s.min() >= 1
        assert s.max() <= 50

    def test_pmf_sums_to_one(self):
        assert BoundedZipf(0.8, 123).pmf.sum() == pytest.approx(1.0)

    def test_supports_exponent_below_one(self, rng):
        # numpy's zipf cannot do this; ours must.
        s = BoundedZipf(0.63, 1000).sample(1000, rng)
        assert s.max() <= 1000

    def test_empirical_mean_matches_analytic(self, rng):
        dist = BoundedZipf(1.5, 100)
        s = dist.sample(200_000, rng)
        assert s.mean() == pytest.approx(dist.mean, rel=0.02)

    def test_deterministic_given_seed(self):
        d = BoundedZipf(1.2, 30)
        assert np.array_equal(d.sample(100, 5), d.sample(100, 5))

    def test_zero_size(self):
        assert BoundedZipf(1.0, 10).sample(0).size == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            BoundedZipf(1.0, 10).sample(-1)


class TestFeedbackCountDistribution:
    def test_paper_defaults(self):
        dist = FeedbackCountDistribution()
        assert dist.d_max == 200
        assert dist.d_avg == 20.0
        assert dist.mean == pytest.approx(20.0, rel=1e-6)

    def test_counts_bounded_by_d_max(self, rng):
        counts = FeedbackCountDistribution().sample_counts(5000, rng)
        assert counts.max() <= 200
        assert counts.min() >= 1

    def test_empirical_average_near_d_avg(self, rng):
        counts = FeedbackCountDistribution().sample_counts(100_000, rng)
        assert counts.mean() == pytest.approx(20.0, rel=0.05)

    def test_heavy_tail_exists(self, rng):
        counts = FeedbackCountDistribution().sample_counts(50_000, rng)
        assert (counts > 100).sum() > 0  # tail reaches near d_max

    def test_rejects_inconsistent_parameters(self):
        with pytest.raises(ValidationError):
            FeedbackCountDistribution(d_max=10, d_avg=10.0)
        with pytest.raises(ValidationError):
            FeedbackCountDistribution(d_max=0)
