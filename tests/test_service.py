"""The long-lived reputation service: ingest, epochs, serving, parity.

The warm-vs-cold parity tests run with the runtime invariant sanitizer
armed (the ``REPRO_SANITIZE=1`` posture), so every row-stochasticity
check inside delta application and aggregation fires for real.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import set_sanitize_enabled
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.errors import ValidationError
from repro.gossip.convergence import average_relative_error
from repro.service import (
    ReputationService,
    ServeSimConfig,
    populate_ledger,
    simulate_service,
)
from repro.types import TransactionOutcome


@pytest.fixture(autouse=True)
def _sanitizer_armed():
    """Run every service test with the invariant sanitizer on."""
    set_sanitize_enabled(True)
    yield
    set_sanitize_enabled(None)


def _seeded_service(n=30, seed=0, **kwargs) -> ReputationService:
    svc = ReputationService(
        n,
        GossipTrustConfig(n=n, seed=seed, compute_reference=False),
        rng=seed,
        **kwargs,
    )
    populate_ledger(svc.ledger, rng=seed)
    return svc


class TestIngest:
    def test_events_count_as_pending_until_epoch(self):
        svc = _seeded_service()
        svc.run_epoch()
        assert svc.pending_events == 0
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        svc.ingest_score(2, 3, 0.5)
        assert svc.pending_events == 2
        svc.run_epoch()
        assert svc.pending_events == 0

    def test_ingest_batch_counts(self):
        svc = _seeded_service()
        count = svc.ingest_batch(
            [(0, 1, TransactionOutcome.AUTHENTIC), (1, 2, TransactionOutcome.INAUTHENTIC)]
        )
        assert count == 2
        assert svc.pending_events == 2

    def test_ingest_validates_like_the_ledger(self):
        svc = _seeded_service()
        with pytest.raises(ValidationError):
            svc.ingest(0, 0, TransactionOutcome.AUTHENTIC)
        with pytest.raises(ValidationError):
            svc.ingest(99, 0, TransactionOutcome.AUTHENTIC)


class TestEpochs:
    def test_first_epoch_is_cold_full_build(self):
        svc = _seeded_service()
        report = svc.run_epoch()
        assert report.epoch == 1
        assert report.warm_started is False
        assert report.dirty_rows == svc.n
        assert report.converged

    def test_later_epochs_warm_start_with_row_deltas(self):
        svc = _seeded_service()
        svc.run_epoch()
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        svc.ingest(0, 2, TransactionOutcome.AUTHENTIC)
        svc.ingest(5, 3, TransactionOutcome.AUTHENTIC)
        report = svc.run_epoch()
        assert report.epoch == 2
        assert report.warm_started is True
        assert report.dirty_rows == 2  # raters 0 and 5
        assert report.events_absorbed == 3

    def test_epoch_with_no_feedback_still_publishes(self):
        svc = _seeded_service()
        first = svc.run_epoch()
        second = svc.run_epoch()
        assert second.epoch == first.epoch + 1
        assert second.dirty_rows == 0
        assert second.events_absorbed == 0

    def test_config_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ReputationService(10, GossipTrustConfig(n=11))

    def test_epoch_reports_accumulate(self):
        svc = _seeded_service()
        svc.run_epoch()
        svc.run_epoch()
        reports = svc.epoch_reports
        assert [r.epoch for r in reports] == [1, 2]


class TestServing:
    def test_lookup_before_first_epoch_rejected(self):
        svc = _seeded_service()
        assert not svc.ready
        with pytest.raises(ValidationError):
            svc.lookup(0)
        with pytest.raises(ValidationError):
            svc.exact_score(0)
        with pytest.raises(ValidationError):
            svc.scores()

    def test_served_score_carries_staleness_stamp(self):
        svc = _seeded_service()
        svc.run_epoch()
        fresh = svc.lookup(3)
        assert fresh.epoch == 1
        assert fresh.pending_events == 0
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        stale = svc.lookup(3)
        assert stale.epoch == 1  # still the old snapshot...
        assert stale.pending_events == 1  # ...and it says how far behind

    def test_served_score_approximates_exact(self):
        svc = _seeded_service(bracket_bits=8)
        svc.run_epoch()
        for node in range(0, svc.n, 7):
            served = svc.lookup(node).score
            exact = svc.exact_score(node)
            if exact > 1e-9:
                assert served / exact < 3.0
                assert exact / served < 3.0

    def test_double_buffer_swaps_every_epoch(self):
        svc = _seeded_service()
        svc.run_epoch()
        first = svc._serving
        svc.run_epoch()
        assert svc._serving != first
        svc.run_epoch()
        assert svc._serving == first

    def test_lookup_validates_range(self):
        svc = _seeded_service()
        svc.run_epoch()
        with pytest.raises(ValidationError):
            svc.lookup(svc.n)

    def test_top_matches_vector_order(self):
        svc = _seeded_service()
        svc.run_epoch()
        top = svc.top(3)
        vector = svc.scores()
        assert [node for node, _ in top] == list(np.argsort(vector)[::-1][:3])
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_stats_counters(self):
        svc = _seeded_service()
        svc.run_epoch()
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        stats = svc.stats()
        assert stats.epoch == 1
        assert stats.events_pending == 1
        assert stats.total_cycles >= 1
        assert stats.store.bloom_bytes > 0


class TestWarmColdParity:
    def test_warm_epoch_matches_cold_scratch_within_epsilon(self):
        # The acceptance property at test scale: after stabilization,
        # a warm incremental epoch and a cold from-scratch run on the
        # same matrix and power-node set converge to the same vector.
        svc = _seeded_service(n=60, seed=2)
        svc.run_epoch()
        for _ in range(6):
            if svc.run_epoch().power_node_churn == 0.0:  # noqa: GT004
                break
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        svc.ingest(7, 2, TransactionOutcome.INAUTHENTIC)
        power = svc.power_nodes
        warm = svc.run_epoch()
        assert warm.warm_started
        cold = GossipTrust(svc.matrix, svc.config, power_nodes=power, rng=3).run(
            raise_on_budget=False, compute_reference=False
        )
        # Two delta=1e-3 runs agree to the few-1e-3 scale at worst.
        assert average_relative_error(svc.scores(), cold.vector) < 5e-3

    def test_incremental_matrix_matches_full_rebuild(self):
        from repro.trust.matrix import TrustMatrix

        svc = _seeded_service(n=40, seed=4)
        svc.run_epoch()
        for rater, ratee in [(0, 1), (0, 2), (11, 5), (23, 0)]:
            svc.ingest(rater, ratee, TransactionOutcome.AUTHENTIC)
        svc.run_epoch()
        rebuilt = TrustMatrix.from_ledger(svc.ledger)
        assert np.allclose(svc.matrix.dense(), rebuilt.dense())


class TestSimulation:
    def test_populate_ledger_is_deterministic(self):
        from repro.trust.feedback import FeedbackLedger

        a, b = FeedbackLedger(30), FeedbackLedger(30)
        pairs_a = populate_ledger(a, rng=5)
        pairs_b = populate_ledger(b, rng=5)
        assert pairs_a == pairs_b
        assert sorted(a.nonzero_pairs()) == sorted(b.nonzero_pairs())

    def test_populate_ledger_rejects_tiny_network(self):
        from repro.trust.feedback import FeedbackLedger

        with pytest.raises(ValidationError):
            populate_ledger(FeedbackLedger(1), rng=0)
        with pytest.raises(ValidationError):
            populate_ledger(FeedbackLedger(10), mean_balance=0.5, rng=0)

    def test_simulate_service_report_shape(self):
        report = simulate_service(
            ServeSimConfig(
                n=40, epochs=2, events_per_epoch=10, queries_per_epoch=30, seed=6
            )
        )
        # epochs measured + the final comparison epoch
        assert len(report.epoch_reports) == 3
        assert report.ingest_events_per_s > 0
        assert report.queries_per_s > 0
        assert report.mean_staleness_events == pytest.approx(10.0)
        assert report.max_staleness_events == 10
        assert report.cold_cycles > 0
        assert report.warm_cycles > 0
        assert report.vector_error < 5e-2
        assert report.store_compression > 0

    def test_simulate_config_validation(self):
        with pytest.raises(ValidationError):
            ServeSimConfig(n=1)
        with pytest.raises(ValidationError):
            ServeSimConfig(epochs=0)
        with pytest.raises(ValidationError):
            ServeSimConfig(dirty_fraction=0.0)
        with pytest.raises(ValidationError):
            ServeSimConfig(events_per_epoch=0)
        with pytest.raises(ValidationError):
            ServeSimConfig(queries_per_epoch=-1)


class TestCli:
    def test_serve_sim_subcommand_renders_report(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve-sim",
                "--n", "40",
                "--epochs", "1",
                "--events", "5",
                "--queries", "10",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "service epochs" in out
        assert "wall speedup (x)" in out
        assert "mean staleness (events)" in out


class TestFailurePolicy:
    """Aggregation failures serve stale snapshots instead of raising."""

    def _failing(self, svc, exc):
        def boom(**kwargs):
            raise exc

        svc._system.run = boom  # simulate an aggregation blow-up

    def test_failed_epoch_serves_stale_with_staleness(self):
        from repro.errors import ConvergenceError

        svc = _seeded_service()
        ok = svc.run_epoch()
        baseline = svc.lookup(0).score
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        self._failing(svc, ConvergenceError("cycle budget blown"))
        report = svc.run_epoch()
        assert report.failed and not report.skipped
        assert report.error.startswith("ConvergenceError")
        assert report.epoch == ok.epoch  # no new snapshot published
        # The stale snapshot keeps serving, stamped with what it missed.
        served = svc.lookup(0)
        assert served.score == baseline
        assert served.pending_events == 1

    def test_consecutive_failures_back_off_exponentially(self):
        from repro.errors import ConvergenceError

        svc = _seeded_service()
        svc.run_epoch()
        self._failing(svc, ConvergenceError("down"))
        flags = []
        for _ in range(8):
            r = svc.run_epoch()
            flags.append("skip" if r.skipped else "fail")
        # fail, skip(1), fail, skip(2), fail, skip(4)...
        assert flags == [
            "fail", "skip", "fail", "skip", "skip", "fail", "skip", "skip",
        ]

    def test_success_resets_the_backoff(self):
        from repro.errors import ConvergenceError

        svc = _seeded_service()
        svc.run_epoch()
        real_run = svc._system.run
        self._failing(svc, ConvergenceError("down"))
        assert svc.run_epoch().failed
        svc._system.run = real_run  # aggregation recovers
        assert svc.run_epoch().skipped  # one backoff skip still pending
        report = svc.run_epoch()
        assert report.converged and not report.failed
        # Backoff cleared: the next failure starts over at one skip.
        self._failing(svc, ConvergenceError("down again"))
        assert svc.run_epoch().failed
        assert svc.run_epoch().skipped
        svc._system.run = real_run
        assert svc.run_epoch().converged

    def test_on_failure_raise_propagates(self):
        from repro.errors import ConvergenceError

        svc = _seeded_service()
        svc.run_epoch()
        self._failing(svc, ConvergenceError("down"))
        with pytest.raises(ConvergenceError):
            svc.run_epoch(on_failure="raise")

    def test_on_failure_validated(self):
        svc = _seeded_service()
        with pytest.raises(ValidationError, match="on_failure"):
            svc.run_epoch(on_failure="retry")

    def test_failed_events_reaggregate_on_recovery(self):
        from repro.errors import ConvergenceError

        svc = _seeded_service()
        svc.run_epoch()
        svc.ingest(0, 1, TransactionOutcome.AUTHENTIC)
        real_run = svc._system.run
        self._failing(svc, ConvergenceError("down"))
        svc.run_epoch()
        assert svc.pending_events == 1  # restored, not silently dropped
        svc._system.run = real_run
        svc.run_epoch()  # backoff skip
        report = svc.run_epoch()
        assert report.converged
        assert svc.pending_events == 0
