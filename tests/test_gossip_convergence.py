"""Epsilon/delta convergence detectors."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gossip.convergence import (
    CycleConvergenceDetector,
    StepConvergenceDetector,
    average_relative_error,
)


class TestAverageRelativeError:
    def test_zero_for_identical(self):
        v = np.array([0.2, 0.8])
        assert average_relative_error(v, v) == 0.0

    def test_known_value(self):
        old = np.array([1.0, 2.0])
        new = np.array([1.1, 1.8])
        # (0.1/1 + 0.2/2) / 2 = 0.1
        assert average_relative_error(new, old) == pytest.approx(0.1)

    def test_floor_guards_zero_reference(self):
        old = np.array([0.0, 1.0])
        new = np.array([0.0, 1.0])
        assert average_relative_error(new, old) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            average_relative_error(np.ones(2), np.ones(3))


class TestStepDetector:
    def test_requires_two_updates(self):
        det = StepConvergenceDetector(1e-3)
        assert det.update(np.array([1.0, 2.0])) is False

    def test_converges_on_small_relative_change(self):
        det = StepConvergenceDetector(1e-2)
        det.update(np.array([1.0, 2.0]))
        assert det.update(np.array([1.005, 2.01])) is True
        assert det.last_residual <= 1e-2

    def test_relative_not_absolute(self):
        det = StepConvergenceDetector(1e-2)
        det.update(np.array([1e-6]))
        # Absolute change 5e-8 is tiny, but relative change is 5%.
        assert det.update(np.array([1.05e-6])) is False

    def test_non_finite_estimates_block_convergence(self):
        det = StepConvergenceDetector(1.0)
        det.update(np.array([np.inf, 1.0]))
        assert det.update(np.array([np.inf, 1.0])) is False

    def test_min_steps_enforced(self):
        det = StepConvergenceDetector(1.0, min_steps=3)
        v = np.ones(2)
        assert det.update(v) is False
        assert det.update(v) is False
        assert det.update(v) is False
        assert det.update(v) is True

    def test_reset(self):
        det = StepConvergenceDetector(1e-2)
        det.update(np.ones(2))
        det.reset()
        assert det.steps == 0
        assert det.update(np.ones(2)) is False

    def test_validation(self):
        with pytest.raises(ValidationError):
            StepConvergenceDetector(0.0)
        with pytest.raises(ValidationError):
            StepConvergenceDetector(1e-3, min_steps=-1)


class TestCycleDetector:
    def test_avg_relative_criterion(self):
        det = CycleConvergenceDetector(1e-2)
        det.update(np.array([0.5, 0.5]))
        assert det.update(np.array([0.5005, 0.4995])) is True

    def test_stays_unconverged_above_delta(self):
        det = CycleConvergenceDetector(1e-4)
        det.update(np.array([0.5, 0.5]))
        assert det.update(np.array([0.45, 0.55])) is False

    def test_l1_metric(self):
        det = CycleConvergenceDetector(0.2, metric="l1")
        det.update(np.array([0.5, 0.5]))
        assert det.update(np.array([0.45, 0.55])) is True
        assert det.last_residual == pytest.approx(0.1)

    def test_linf_metric(self):
        det = CycleConvergenceDetector(0.01, metric="linf")
        det.update(np.array([0.5, 0.5]))
        assert det.update(np.array([0.48, 0.52])) is False

    def test_unknown_metric(self):
        with pytest.raises(ValidationError):
            CycleConvergenceDetector(0.1, metric="cosine")

    def test_cycles_counter_and_reset(self):
        det = CycleConvergenceDetector(1e-3)
        det.update(np.ones(2) / 2)
        det.update(np.ones(2) / 2)
        assert det.cycles == 2
        det.reset()
        assert det.cycles == 0


class TestDegenerateInputs:
    """Empty and all-NaN estimate columns must never crash or converge."""

    def test_average_relative_error_empty_is_zero(self):
        assert average_relative_error(np.array([]), np.array([])) == 0.0

    def test_average_relative_error_all_nan_is_inf(self):
        nan2 = np.array([np.nan, np.nan])
        assert average_relative_error(nan2, nan2) == float("inf")
        assert average_relative_error(nan2, np.ones(2)) == float("inf")

    def test_average_relative_error_partial_nan_uses_finite_entries(self):
        new = np.array([1.1, np.nan, 2.0])
        old = np.array([1.0, 5.0, np.nan])
        # Only index 0 is finite in both; error is |1.1 - 1.0| / 1.0.
        assert average_relative_error(new, old) == pytest.approx(0.1)

    def test_average_relative_error_inf_entries_masked(self):
        new = np.array([np.inf, 1.0])
        old = np.array([1.0, 1.0])
        assert average_relative_error(new, old) == 0.0

    def test_step_detector_empty_estimates_never_converge(self):
        det = StepConvergenceDetector(1e-3)
        empty = np.array([])
        for _ in range(5):
            assert det.update(empty) is False
        assert det.steps == 5
        assert det.last_residual == float("inf")

    def test_step_detector_shape_change_resets_comparison(self):
        det = StepConvergenceDetector(1e-3)
        assert det.update(np.ones(3)) is False
        # A population change (node join/leave) makes the previous
        # snapshot incomparable; no verdict, no crash.
        assert det.update(np.ones(4)) is False
        assert det.update(np.ones(4)) is True

    def test_step_detector_all_nan_blocks_convergence(self):
        det = StepConvergenceDetector(1e-3)
        nan3 = np.full(3, np.nan)
        for _ in range(4):
            assert det.update(nan3) is False

    def test_cycle_detector_empty_vector_never_converges(self):
        det = CycleConvergenceDetector(1e-2)
        empty = np.array([])
        for _ in range(4):
            assert det.update(empty) is False
        assert det.cycles == 4

    def test_cycle_detector_empty_vector_linf_metric(self):
        det = CycleConvergenceDetector(1e-2, metric="linf")
        empty = np.array([])
        assert det.update(empty) is False
        assert det.update(empty) is False  # diff.max() would raise unguarded

    def test_cycle_detector_all_nan_blocks_convergence(self):
        det = CycleConvergenceDetector(1e-2)
        nan4 = np.full(4, np.nan)
        assert det.update(nan4) is False
        assert det.update(nan4) is False
        assert det.last_residual == float("inf")

    def test_cycle_detector_nan_residual_blocks_l1(self):
        det = CycleConvergenceDetector(1e-2, metric="l1")
        assert det.update(np.full(2, np.nan)) is False
        assert det.update(np.full(2, np.nan)) is False  # nan < delta is False
