"""Scripted fault plans: validation, firing, counters, determinism."""

import pytest

from repro.errors import ValidationError
from repro.network.faultplan import (
    CrashBurst,
    FaultPlan,
    LinkFlap,
    LossRamp,
    Partition,
    named_plan,
    plan_names,
)
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator


def build(n=20, seed=0, loss=0.0):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=seed), rng=seed + 1)
    transport = Transport(sim, latency=0.5, loss_rate=loss, rng=seed + 2)
    return sim, overlay, transport


class TestValidation:
    def test_crash_fraction_out_of_range(self):
        with pytest.raises(ValidationError):
            FaultPlan([CrashBurst(at=1.0, fraction=1.5)])

    def test_crash_negative_count(self):
        with pytest.raises(ValidationError):
            FaultPlan([CrashBurst(at=1.0, count=-1)])

    def test_partition_must_heal_after_forming(self):
        with pytest.raises(ValidationError, match="heal_at"):
            FaultPlan([Partition(at=5.0, heal_at=5.0)])

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValidationError, match="groups"):
            FaultPlan([Partition(at=1.0, heal_at=2.0, groups=1)])

    def test_loss_ramp_peak_is_a_probability(self):
        with pytest.raises(ValidationError):
            FaultPlan([LossRamp(start=0.0, end=1.0, peak=1.5)])

    def test_loss_ramp_end_after_start(self):
        with pytest.raises(ValidationError, match="end"):
            FaultPlan([LossRamp(start=2.0, end=1.0, peak=0.1)])

    def test_flap_parameters(self):
        with pytest.raises(ValidationError, match="count"):
            FaultPlan([LinkFlap(start=0.0, count=0, period=1.0)])
        with pytest.raises(ValidationError, match="period"):
            FaultPlan([LinkFlap(start=0.0, count=1, period=0.0)])

    def test_min_alive_floor(self):
        with pytest.raises(ValidationError, match="min_alive"):
            FaultPlan([], min_alive=1)

    def test_schedule_only_once(self):
        sim, overlay, transport = build()
        plan = FaultPlan([CrashBurst(at=1.0, count=1)], rng=0)
        plan.schedule(sim, transport, overlay)
        with pytest.raises(ValidationError, match="already scheduled"):
            plan.schedule(sim, transport, overlay)


class TestCrashBurst:
    def test_crash_and_rejoin_round_trip(self):
        sim, overlay, transport = build(n=20)
        crashed, rejoined = [], []
        plan = FaultPlan(
            [CrashBurst(at=1.0, count=5, rejoin_after=2.0)], rng=0
        )
        plan.schedule(
            sim,
            transport,
            overlay,
            on_crash=crashed.append,
            on_rejoin=rejoined.append,
        )
        sim.run(until=2.0)
        assert overlay.alive_count == 15
        assert len(crashed) == 5
        sim.run(until=10.0)
        assert overlay.alive_count == 20
        assert sorted(rejoined) == sorted(crashed)
        assert plan.summary()["crashes"] == 5
        assert plan.summary()["rejoins"] == 5

    def test_fraction_based_sizing(self):
        sim, overlay, transport = build(n=20)
        plan = FaultPlan([CrashBurst(at=1.0, fraction=0.25)], rng=0)
        plan.schedule(sim, transport, overlay)
        sim.run(until=2.0)
        assert overlay.alive_count == 15

    def test_min_alive_caps_the_burst(self):
        sim, overlay, transport = build(n=8)
        plan = FaultPlan([CrashBurst(at=1.0, count=100)], rng=0, min_alive=4)
        plan.schedule(sim, transport, overlay)
        sim.run(until=2.0)
        assert overlay.alive_count == 4

    def test_crash_log_records_time_and_kind(self):
        sim, overlay, transport = build()
        plan = FaultPlan([CrashBurst(at=3.0, count=2)], rng=0)
        plan.schedule(sim, transport, overlay)
        sim.run(until=5.0)
        assert len(plan.log) == 1
        t, kind, _detail = plan.log[0]
        assert t == 3.0 and kind == "crash"


class TestPartition:
    def test_partition_forms_and_heals(self):
        sim, overlay, transport = build(n=20)
        plan = FaultPlan([Partition(at=1.0, heal_at=5.0, groups=2)], rng=0)
        plan.schedule(sim, transport, overlay)
        sim.run(until=2.0)
        assert transport.links.partitioned
        # Some cross-group pair must be down.
        downs = sum(
            1 for u in range(20) for v in range(u + 1, 20)
            if transport.links.is_down(u, v)
        )
        assert downs > 0
        sim.run(until=6.0)
        assert not transport.links.partitioned
        assert plan.partitions == 1 and plan.heals == 1

    def test_cross_partition_sends_drop(self):
        sim, overlay, transport = build(n=10)
        transport.register(0, lambda m: None)
        plan = FaultPlan([Partition(at=1.0, heal_at=50.0, groups=2)], rng=0)
        plan.schedule(sim, transport, overlay)
        sim.run(until=2.0)
        before = transport.dropped_link
        for u in range(10):
            for v in range(10):
                if u != v:
                    transport.send(u, v, None)
        assert transport.dropped_link > before


class TestLossRamp:
    def test_staircase_peaks_then_restores(self):
        sim, overlay, transport = build(loss=0.05)
        plan = FaultPlan(
            [LossRamp(start=1.0, end=9.0, peak=0.45, steps=4)], rng=0
        )
        plan.schedule(sim, transport, overlay)
        sim.run(until=5.0)  # ramp midpoint: full peak
        assert transport.loss_rate == pytest.approx(0.45)
        sim.run(until=10.0)
        assert transport.loss_rate == pytest.approx(0.05)
        assert plan.loss_changes == 8


class TestLinkFlap:
    def test_links_flap_down_then_heal(self):
        sim, overlay, transport = build(n=20)
        plan = FaultPlan(
            [LinkFlap(start=1.0, count=3, period=2.0, cycles=2)], rng=0
        )
        plan.schedule(sim, transport, overlay)
        sim.run(until=1.5)  # mid first down-phase
        assert transport.links.down_count == 3
        sim.run(until=20.0)
        assert transport.links.down_count == 0
        assert plan.flaps == 6  # 3 links x 2 cycles


class TestNamedPlans:
    def test_names_are_sorted_and_complete(self):
        assert plan_names() == ("combo", "crash", "loss_ramp", "partition")

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown fault plan"):
            named_plan("meteor", horizon=10.0)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValidationError, match="horizon"):
            named_plan("crash", horizon=0.0)

    @pytest.mark.parametrize("name", ["combo", "crash", "loss_ramp", "partition"])
    def test_every_named_plan_schedules_and_runs(self, name):
        sim, overlay, transport = build(n=20)
        transport.register(0, lambda m: None)
        plan = named_plan(name, horizon=20.0, rng=0)
        plan.schedule(sim, transport, overlay)
        sim.run(until=30.0)
        assert sum(plan.summary().values()) > 0
        assert not transport.links.partitioned  # everything healed


class TestDeterminism:
    def test_same_seed_same_log(self):
        logs = []
        for _ in range(2):
            sim, overlay, transport = build(n=20, seed=5)
            plan = named_plan("combo", horizon=20.0, rng=99)
            plan.schedule(sim, transport, overlay)
            sim.run(until=30.0)
            logs.append((tuple(plan.log), tuple(sorted(plan.summary().items()))))
        assert logs[0] == logs[1]

    def test_different_seed_different_victims(self):
        picks = []
        for rng_seed in (1, 2):
            sim, overlay, transport = build(n=40, seed=5)
            plan = FaultPlan([CrashBurst(at=1.0, count=8)], rng=rng_seed)
            plan.schedule(sim, transport, overlay)
            sim.run(until=2.0)
            picks.append(frozenset(
                v for v in range(40) if not overlay.is_alive(v)
            ))
        assert picks[0] != picks[1]
