"""Two-segment Zipf query popularity."""

import numpy as np
import pytest

from repro.distributions.query import TwoSegmentZipf
from repro.errors import ValidationError


class TestConstruction:
    def test_paper_defaults(self):
        d = TwoSegmentZipf(10_000)
        assert d.head_exponent == 0.63
        assert d.tail_exponent == 1.24
        assert d.break_rank == 250

    def test_break_rank_clipped_to_n(self):
        d = TwoSegmentZipf(100, break_rank=250)
        assert d.break_rank == 100

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            TwoSegmentZipf(0)
        with pytest.raises(ValidationError):
            TwoSegmentZipf(10, head_exponent=-1.0)
        with pytest.raises(ValidationError):
            TwoSegmentZipf(10, break_rank=0)


class TestPmf:
    def test_sums_to_one(self):
        assert TwoSegmentZipf(5000).pmf.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = TwoSegmentZipf(2000).pmf
        assert np.all(np.diff(pmf) <= 1e-18)

    def test_continuous_at_break(self):
        d = TwoSegmentZipf(1000, break_rank=250)
        pmf = d.pmf
        # No spike: the ratio across the break matches the tail exponent,
        # not a discontinuity.
        ratio = pmf[250] / pmf[249]
        expected = (251 / 250) ** -d.tail_exponent
        assert ratio == pytest.approx(expected, rel=1e-9)

    def test_tail_steeper_than_head(self):
        d = TwoSegmentZipf(5000)
        pmf = d.pmf
        head_slope = np.log(pmf[199] / pmf[99]) / np.log(200 / 100)
        tail_slope = np.log(pmf[1999] / pmf[999]) / np.log(2000 / 1000)
        assert head_slope == pytest.approx(-0.63, abs=0.02)
        assert tail_slope == pytest.approx(-1.24, abs=0.02)

    def test_probability_accessor(self):
        d = TwoSegmentZipf(100)
        assert d.probability(1) == pytest.approx(d.pmf[0])
        with pytest.raises(ValidationError):
            d.probability(0)
        with pytest.raises(ValidationError):
            d.probability(101)


class TestSampling:
    def test_ranks_in_support(self, rng):
        ranks = TwoSegmentZipf(500).sample_ranks(20_000, rng)
        assert ranks.min() >= 1
        assert ranks.max() <= 500

    def test_head_is_hot(self, rng):
        d = TwoSegmentZipf(10_000)
        ranks = d.sample_ranks(50_000, rng)
        head_fraction = (ranks <= 250).mean()
        assert head_fraction == pytest.approx(d.pmf[:250].sum(), abs=0.02)

    def test_deterministic_given_seed(self):
        d = TwoSegmentZipf(100)
        assert np.array_equal(d.sample_ranks(50, 3), d.sample_ranks(50, 3))

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            TwoSegmentZipf(10).sample_ranks(-5)
