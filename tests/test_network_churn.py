"""Churn model: departures, rejoins, floors, callbacks."""

import pytest

from repro.errors import ValidationError
from repro.network.churn import ChurnModel
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.sim.engine import Simulator


def make(n=30, **kwargs):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=0), rng=1)
    churn = ChurnModel(sim, overlay, rng=2, **kwargs)
    return sim, overlay, churn


class TestDynamics:
    def test_departures_happen(self):
        sim, overlay, churn = make(mean_session=10.0, mean_offline=None)
        churn.start()
        sim.run(until=100.0)
        assert churn.departures > 0
        assert overlay.alive_count < 30

    def test_rejoins_happen(self):
        sim, overlay, churn = make(mean_session=5.0, mean_offline=5.0)
        churn.start()
        sim.run(until=200.0)
        assert churn.rejoins > 0

    def test_population_floor_respected(self):
        sim, overlay, churn = make(mean_session=1.0, mean_offline=None, min_alive=25)
        churn.start()
        sim.run(until=500.0)
        assert overlay.alive_count >= 25

    def test_steady_state_availability(self):
        # With mean session S and offline O, availability ~ S/(S+O).
        sim, overlay, churn = make(mean_session=30.0, mean_offline=10.0, min_alive=0)
        churn.start()
        sim.run(until=2000.0)
        assert overlay.alive_count / 30 == pytest.approx(0.75, abs=0.25)

    def test_start_is_idempotent(self):
        sim, _overlay, churn = make()
        churn.start()
        churn.start()
        before = sim.peek()
        assert before < float("inf")


class TestCallbacks:
    def test_leave_and_join_hooks_fire(self):
        sim, _overlay, churn = make(mean_session=5.0, mean_offline=5.0)
        left, joined = [], []
        churn.on_leave(left.append)
        churn.on_join(joined.append)
        churn.start()
        sim.run(until=100.0)
        assert len(left) == churn.departures
        assert len(joined) == churn.rejoins
        assert len(left) > 0


class TestValidation:
    def test_rejects_nonpositive_session(self):
        sim = Simulator()
        overlay = Overlay(random_graph(10, rng=0))
        with pytest.raises(ValidationError):
            ChurnModel(sim, overlay, mean_session=0.0)

    def test_rejects_nonpositive_offline(self):
        sim = Simulator()
        overlay = Overlay(random_graph(10, rng=0))
        with pytest.raises(ValidationError):
            ChurnModel(sim, overlay, mean_offline=-1.0)
