"""Churn model: departures, rejoins, floors, callbacks."""

import pytest

from repro.errors import ValidationError
from repro.network.churn import ChurnModel
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.sim.engine import Simulator


def make(n=30, **kwargs):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=0), rng=1)
    churn = ChurnModel(sim, overlay, rng=2, **kwargs)
    return sim, overlay, churn


class TestDynamics:
    def test_departures_happen(self):
        sim, overlay, churn = make(mean_session=10.0, mean_offline=None)
        churn.start()
        sim.run(until=100.0)
        assert churn.departures > 0
        assert overlay.alive_count < 30

    def test_rejoins_happen(self):
        sim, overlay, churn = make(mean_session=5.0, mean_offline=5.0)
        churn.start()
        sim.run(until=200.0)
        assert churn.rejoins > 0

    def test_population_floor_respected(self):
        sim, overlay, churn = make(mean_session=1.0, mean_offline=None, min_alive=25)
        churn.start()
        sim.run(until=500.0)
        assert overlay.alive_count >= 25

    def test_steady_state_availability(self):
        # With mean session S and offline O, availability ~ S/(S+O).
        sim, overlay, churn = make(mean_session=30.0, mean_offline=10.0, min_alive=0)
        churn.start()
        sim.run(until=2000.0)
        assert overlay.alive_count / 30 == pytest.approx(0.75, abs=0.25)

    def test_start_is_idempotent(self):
        sim, _overlay, churn = make()
        churn.start()
        churn.start()
        before = sim.peek()
        assert before < float("inf")


class TestCallbacks:
    def test_leave_and_join_hooks_fire(self):
        sim, _overlay, churn = make(mean_session=5.0, mean_offline=5.0)
        left, joined = [], []
        churn.on_leave(left.append)
        churn.on_join(joined.append)
        churn.start()
        sim.run(until=100.0)
        assert len(left) == churn.departures
        assert len(joined) == churn.rejoins
        assert len(left) > 0


class TestValidation:
    def test_rejects_nonpositive_session(self):
        sim = Simulator()
        overlay = Overlay(random_graph(10, rng=0))
        with pytest.raises(ValidationError):
            ChurnModel(sim, overlay, mean_session=0.0)

    def test_rejects_nonpositive_offline(self):
        sim = Simulator()
        overlay = Overlay(random_graph(10, rng=0))
        with pytest.raises(ValidationError):
            ChurnModel(sim, overlay, mean_offline=-1.0)


class TestRejoinUnderArmedSanitizer:
    """ChurnModel rejoin and Overlay.join must survive a sanitized cycle.

    A rejoin mid-cycle re-inserts a node while gossip mass is moving;
    the engine's bounded invariant (mass never created) must hold and
    the converged estimates must stay finite and non-negative.
    """

    def _run_sanitized_cycle(self, strategy):
        import numpy as np

        from repro.analysis.sanitizer import set_sanitize_enabled
        from repro.experiments.synthetic import synthetic_trust_matrix
        from repro.gossip.factory import make_engine
        from repro.network.transport import Transport
        from repro.utils.rng import RngStreams

        n = 32
        streams = RngStreams(7)
        S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
        sim = Simulator()
        overlay = Overlay(random_graph(n, rng=0), rng=streams.get("overlay"))
        transport = Transport(sim, latency=0.5, rng=streams.get("net"))
        eng = make_engine(
            "message",
            n=n,
            rng=streams,
            sim=sim,
            transport=transport,
            overlay=overlay,
            partner_strategy=strategy,
            mass_restore_budget=0.25,
            round_interval=1.0,
            max_rounds=120,
        )
        churn = ChurnModel(
            sim, overlay, mean_session=40.0, mean_offline=10.0,
            min_alive=8, rng=streams.get("churn"),
        )
        churn.on_join(eng.partnering.node_joined)
        churn.start()
        set_sanitize_enabled(True)
        try:
            res = eng.run_cycle(S, np.full(n, 1.0 / n))
        finally:
            set_sanitize_enabled(None)
        return churn, res

    @pytest.mark.parametrize("strategy", ["global", "hyparview", "brahms"])
    def test_rejoins_mid_cycle_keep_estimates_finite(self, strategy):
        import numpy as np

        churn, res = self._run_sanitized_cycle(strategy)
        assert churn.departures > 0  # the cycle really saw churn
        assert np.all(np.isfinite(res.v_next))
        assert np.all(res.v_next >= 0.0)
        assert res.gossip_error < 1.0
