"""Fixture self-tests for the interprocedural layer and rules GT005-GT009.

Every flow-aware rule is exercised both ways — violating snippets must
fire, compliant ones must stay silent — through the same
:func:`~repro.analysis.linter.lint_sources` entry point the CLI uses,
so project-index binding, path scoping, and suppression handling are
covered by the same fixtures.  The call-graph and dataflow engines get
their own unit tests at the top.
"""

import subprocess
import sys
from pathlib import Path

from repro.analysis.callgraph import ProjectIndex, module_name_for
from repro.analysis.linter import SourceFile, lint_sources
from repro.analysis.rules._flowutils import UNORDERED, UnorderedClassifier
from repro.analysis.rules.gt005_iterorder import NondeterministicIterOrderRule
from repro.analysis.rules.gt006_ownership import SharedWriteOwnershipRule
from repro.analysis.rules.gt007_procdet import ProcessPoolDisciplineRule
from repro.analysis.rules.gt008_reduction import FloatReductionOrderRule
from repro.analysis.rules.gt009_suppress import SuppressionHygieneRule

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "analyze.py"


def lint_one(rule, text, path):
    return lint_sources([SourceFile(path, text)], [rule])


def lint_many(rule, sources):
    return lint_sources([SourceFile(p, t) for p, t in sources], [rule])


# -- call graph --------------------------------------------------------------


class TestProjectIndex:
    def test_module_name_anchoring(self):
        assert module_name_for("src/repro/gossip/engine.py") == (
            "repro.gossip.engine"
        )
        assert module_name_for("tools/analyze.py") == "tools.analyze"
        assert module_name_for("/abs/src/repro/core/config.py") == (
            "repro.core.config"
        )

    def test_resolves_module_function_call(self):
        src = SourceFile(
            "src/repro/core/a.py",
            "def helper():\n    return 1\n\ndef caller():\n    return helper()\n",
        )
        project = ProjectIndex([src])
        info = project.functions["repro.core.a.caller"]
        assert "repro.core.a.helper" in info.calls

    def test_resolves_import_alias(self):
        lib = SourceFile("src/repro/core/lib.py", "def f():\n    return 0\n")
        use = SourceFile(
            "src/repro/core/use.py",
            "from repro.core.lib import f as g\n\ndef caller():\n    return g()\n",
        )
        project = ProjectIndex([lib, use])
        info = project.functions["repro.core.use.caller"]
        assert "repro.core.lib.f" in info.calls

    def test_reaches_is_transitive(self):
        src = SourceFile(
            "src/repro/core/chain.py",
            "def sink():\n"
            "    rng.integers(3)\n"
            "\n"
            "def mid():\n"
            "    sink()\n"
            "\n"
            "def top():\n"
            "    mid()\n",
        )
        project = ProjectIndex([src])
        pred = lambda info: "integers" in info.attr_calls  # noqa: E731
        assert project.reaches("repro.core.chain.top", pred)
        assert not project.reaches("repro.core.chain.sink2", pred)

    def test_nested_function_qname(self):
        src = SourceFile(
            "src/repro/core/nest.py",
            "def outer():\n    def inner():\n        return 1\n    return inner()\n",
        )
        project = ProjectIndex([src])
        assert "repro.core.nest.outer.<locals>.inner" in project.functions


class TestDataflow:
    def _last_value_tags(self, body):
        """Tags of the final ``y = <expr>`` statement's right-hand side."""
        text = f"def f(cond):\n{body}\n"
        src = SourceFile("src/repro/core/df.py", text)
        project = ProjectIndex([src])
        flow = project.flow("repro.core.df.f")
        fr = flow.propagate(UnorderedClassifier())
        last = flow.func.body[-1]
        return fr.tags_at(last, last.value)

    def test_set_literal_is_unordered(self):
        tags = self._last_value_tags("    s = {1, 2}\n    y = s")
        assert UNORDERED in tags

    def test_sorted_sanitizes(self):
        tags = self._last_value_tags("    s = {1, 2}\n    y = sorted(s)")
        assert UNORDERED not in tags

    def test_list_passthrough_keeps_taint(self):
        tags = self._last_value_tags("    s = {1, 2}\n    y = list(s)")
        assert UNORDERED in tags

    def test_branch_merge_is_union(self):
        body = (
            "    if cond:\n"
            "        x = {1}\n"
            "    else:\n"
            "        x = [1]\n"
            "    y = x"
        )
        assert UNORDERED in self._last_value_tags(body)


# -- GT005: nondeterministic iteration order ---------------------------------


GT5 = NondeterministicIterOrderRule


class TestGT005:
    PATH = "src/repro/gossip/part.py"

    def test_set_iteration_reaching_rng_fires(self):
        bad = (
            "def pick(rng, peers):\n"
            "    live = set(peers)\n"
            "    for p in live:\n"
            "        rng.choice([p])\n"
        )
        assert lint_one(GT5(), bad, self.PATH)

    def test_sorted_pass_is_clean(self):
        good = (
            "def pick(rng, peers):\n"
            "    live = set(peers)\n"
            "    for p in sorted(live):\n"
            "        rng.choice([p])\n"
        )
        assert not lint_one(GT5(), good, self.PATH)

    def test_no_order_sink_stays_silent(self):
        benign = (
            "def count(peers):\n"
            "    live = set(peers)\n"
            "    total = 0\n"
            "    for p in live:\n"
            "        total = max(total, p)\n"
            "    return total\n"
        )
        assert not lint_one(GT5(), benign, self.PATH)

    def test_comprehension_over_set_fires(self):
        bad = (
            "def pick(rng, peers):\n"
            "    live = frozenset(peers)\n"
            "    ordered = [p for p in live]\n"
            "    return rng.choice(ordered)\n"
        )
        assert lint_one(GT5(), bad, self.PATH)

    def test_np_materialization_of_set_fires(self):
        bad = (
            "import numpy as np\n"
            "def pick(rng, peers):\n"
            "    live = set(peers)\n"
            "    arr = np.fromiter(live, dtype=int)\n"
            "    return rng.integers(arr.size)\n"
        )
        assert lint_one(GT5(), bad, self.PATH)

    def test_interprocedural_sink_via_callee(self):
        bad = (
            "def draw(rng, xs):\n"
            "    return rng.shuffle(xs)\n"
            "\n"
            "def sched(rng, peers):\n"
            "    live = set(peers)\n"
            "    for p in live:\n"
            "        draw(rng, [p])\n"
        )
        assert lint_one(GT5(), bad, self.PATH)

    def test_listdir_taint_fires(self):
        bad = (
            "import os\n"
            "def load(rng, d):\n"
            "    for name in os.listdir(d):\n"
            "        rng.random()\n"
        )
        assert lint_one(GT5(), bad, self.PATH)

    def test_tests_are_out_of_scope(self):
        bad = (
            "def pick(rng, peers):\n"
            "    for p in set(peers):\n"
            "        rng.choice([p])\n"
        )
        assert not lint_one(GT5(), bad, "tests/test_x.py")


# -- GT006: shared-workspace write ownership ---------------------------------


GT6 = SharedWriteOwnershipRule
_GT6_PATH = "src/repro/gossip/shard_exec.py"

_GT6_PRELUDE = (
    "from repro.gossip.memory import attach_array\n"
    "\n"
    "_CTX = {}\n"
    "\n"
    "def init(spec):\n"
    "    arr, keep = attach_array('shared', spec['x'])\n"
    "    tgt, keep2 = attach_array('shared', spec['t'])\n"
    "    _CTX.update(shards=[[arr]], targets=tgt)\n"
    "\n"
)


class TestGT006:
    def test_own_slot_write_is_clean(self):
        good = _GT6_PRELUDE + (
            "def step(shard):\n"
            "    pools = _CTX['shards'][shard]\n"
            "    pools[0].fill(0)\n"
        )
        assert not lint_one(GT6(), good, _GT6_PATH)

    def test_foreign_slot_write_fires(self):
        bad = _GT6_PRELUDE + (
            "def step(shard):\n"
            "    other = _CTX['shards'][shard + 1]\n"
            "    other[0].fill(0)\n"
        )
        vs = lint_one(GT6(), bad, _GT6_PATH)
        assert vs and "foreign" in vs[0].message

    def test_constant_index_write_fires(self):
        bad = _GT6_PRELUDE + (
            "def step(shard):\n"
            "    zero = _CTX['shards'][0]\n"
            "    zero[0][3] = 1.0\n"
        )
        assert lint_one(GT6(), bad, _GT6_PATH)

    def test_unsliced_table_write_fires(self):
        bad = _GT6_PRELUDE + (
            "def step(shard):\n"
            "    _CTX['shards'][shard] = None\n"
        )
        vs = lint_one(GT6(), bad, _GT6_PATH)
        assert vs

    def test_parent_owned_flat_buffer_write_fires(self):
        bad = _GT6_PRELUDE + (
            "def step(shard, row):\n"
            "    tgts = _CTX['targets']\n"
            "    tgts[row] = 7\n"
        )
        vs = lint_one(GT6(), bad, _GT6_PATH)
        assert vs

    def test_out_kwarg_to_foreign_fires(self):
        bad = _GT6_PRELUDE + (
            "import numpy as np\n"
            "def step(shard):\n"
            "    other = _CTX['shards'][shard - 1]\n"
            "    np.add(1, 2, out=other[0])\n"
        )
        assert lint_one(GT6(), bad, _GT6_PATH)

    def test_writer_kernel_out_args_checked(self):
        bad = _GT6_PRELUDE + (
            "def step(shard, csr_matmat, n, cols, mi, mx, md):\n"
            "    src = _CTX['shards'][shard]\n"
            "    out = _CTX['shards'][shard + 1]\n"
            "    csr_matmat(n, cols, mi, mx, md,\n"
            "               src[0], src[0], src[0],\n"
            "               out[0], out[0], out[0])\n"
        )
        assert lint_one(GT6(), bad, _GT6_PATH)

    def test_reads_of_foreign_slots_are_fine(self):
        good = _GT6_PRELUDE + (
            "def peek(shard):\n"
            "    other = _CTX['shards'][shard + 1]\n"
            "    return other[0]\n"
        )
        assert not lint_one(GT6(), good, _GT6_PATH)

    def test_private_scratch_writes_are_fine(self):
        good = _GT6_PRELUDE + (
            "import numpy as np\n"
            "def step(shard):\n"
            "    scratch = np.empty(4)\n"
            "    scratch.fill(0.5)\n"
            "    scratch[0] = 1\n"
        )
        assert not lint_one(GT6(), good, _GT6_PATH)

    def test_other_modules_out_of_scope(self):
        bad = _GT6_PRELUDE + (
            "def step(shard):\n"
            "    _CTX['shards'][shard + 1][0].fill(0)\n"
        )
        assert not lint_one(GT6(), bad, "src/repro/gossip/engine.py")


# -- GT007: process fan-out discipline ---------------------------------------


GT7 = ProcessPoolDisciplineRule
_GT7_PATH = "src/repro/experiments/fan.py"
_POOL = "from concurrent.futures import ProcessPoolExecutor, as_completed\n"


class TestGT007:
    def test_as_completed_fires(self):
        bad = _POOL + (
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = [ex.submit(t) for t in tasks]\n"
            "        return [f.result() for f in as_completed(futs)]\n"
        )
        vs = lint_one(GT7(), bad, _GT7_PATH)
        assert vs and "as_completed" in vs[0].message

    def test_futures_set_add_fires(self):
        bad = _POOL + (
            "def run(tasks):\n"
            "    futs = set()\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        for t in tasks:\n"
            "            futs.add(ex.submit(t))\n"
        )
        assert lint_one(GT7(), bad, _GT7_PATH)

    def test_futures_set_comprehension_fires(self):
        bad = _POOL + (
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = {ex.submit(t) for t in tasks}\n"
        )
        assert lint_one(GT7(), bad, _GT7_PATH)

    def test_ordered_futures_list_is_clean(self):
        good = _POOL + (
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = [ex.submit(t) for t in tasks]\n"
            "        return [f.result() for f in futs]\n"
        )
        assert not lint_one(GT7(), good, _GT7_PATH)

    def test_shared_rng_submission_fires(self):
        bad = _POOL + (
            "def task(rng, i):\n"
            "    return rng.integers(i)\n"
            "\n"
            "def run(rng):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = [ex.submit(task, rng, i) for i in range(4)]\n"
            "        return [f.result() for f in futs]\n"
        )
        vs = lint_one(GT7(), bad, _GT7_PATH)
        assert vs and "seed" in vs[0].message

    def test_spawned_seed_submission_is_clean(self):
        good = _POOL + (
            "def task(seed, i):\n"
            "    import numpy as np\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(i)\n"
            "\n"
            "def run(ss):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = [ex.submit(task, child_seed, i)\n"
            "                for i, child_seed in enumerate(ss.spawn(4))]\n"
            "        return [f.result() for f in futs]\n"
        )
        assert not lint_one(GT7(), good, _GT7_PATH)

    def test_rng_free_task_needs_no_seed(self):
        good = _POOL + (
            "def task(i):\n"
            "    return i * i\n"
            "\n"
            "def run():\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        futs = [ex.submit(task, i) for i in range(4)]\n"
            "        return [f.result() for f in futs]\n"
        )
        assert not lint_one(GT7(), good, _GT7_PATH)

    def test_no_executor_import_gates_rule_off(self):
        benign = (
            "def run(add, items):\n"
            "    seen = set()\n"
            "    seen.add(add(items))\n"
        )
        assert not lint_one(GT7(), benign, _GT7_PATH)


# -- GT008: float reduction order --------------------------------------------


GT8 = FloatReductionOrderRule
_GT8_PATH = "src/repro/trust/agg.py"


class TestGT008:
    def test_sum_over_set_fires(self):
        bad = "def total(xs):\n    return sum(set(xs))\n"
        assert lint_one(GT8(), bad, _GT8_PATH)

    def test_fsum_over_set_is_clean(self):
        good = (
            "import math\n"
            "def total(xs):\n    return math.fsum(set(xs))\n"
        )
        assert not lint_one(GT8(), good, _GT8_PATH)

    def test_sum_over_sorted_is_clean(self):
        good = "def total(xs):\n    return sum(sorted(set(xs)))\n"
        assert not lint_one(GT8(), good, _GT8_PATH)

    def test_accumulation_loop_over_set_fires(self):
        bad = (
            "def total(xs):\n"
            "    acc = 0.0\n"
            "    for x in set(xs):\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert lint_one(GT8(), bad, _GT8_PATH)

    def test_accumulation_loop_over_list_is_clean(self):
        good = (
            "def total(xs):\n"
            "    acc = 0.0\n"
            "    for x in list(xs):\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert not lint_one(GT8(), good, _GT8_PATH)

    def test_out_of_scope_module_is_silent(self):
        bad = "def total(xs):\n    return sum(set(xs))\n"
        assert not lint_one(GT8(), bad, "src/repro/metrics/report.py")


# -- GT009: suppression hygiene ----------------------------------------------


GT9 = SuppressionHygieneRule
_GT9_PATH = "src/repro/core/mod.py"


class TestGT009:
    def test_blanket_noqa_fires(self):
        bad = "x = 1  # noqa\n"
        vs = lint_one(GT9(), bad, _GT9_PATH)
        assert vs and "blanket" in vs[0].message

    def test_bare_gt_sentinel_fires(self):
        bad = "x = 1.0 == y  # noqa: GT004\n"
        vs = lint_one(GT9(), bad, _GT9_PATH)
        assert vs and "bare suppression" in vs[0].message

    def test_justified_sentinel_is_clean(self):
        good = "x = w == 0.0  # noqa: GT004 -- exact sentinel, never rounded\n"
        assert not lint_one(GT9(), good, _GT9_PATH)

    def test_unknown_gt_code_fires(self):
        bad = "x = 1  # noqa: GT999 -- no such rule\n"
        vs = lint_one(GT9(), bad, _GT9_PATH)
        assert vs and "GT999" in vs[0].message

    def test_foreign_tool_codes_ignored(self):
        good = "import sys  # noqa: E402\n"
        assert not lint_one(GT9(), good, _GT9_PATH)

    def test_gt009_is_not_suppressible(self):
        bad = "x = 1  # noqa\n"  # the blanket sentinel suppresses... itself?
        assert lint_one(GT9(), bad, _GT9_PATH)

    def test_tests_are_out_of_scope(self):
        assert not lint_one(GT9(), "x = 1  # noqa\n", "tests/test_y.py")


# -- shared project index caching --------------------------------------------


class TestSharedProjectIndex:
    def test_flow_rules_share_one_index(self):
        """lint_sources binds the same ProjectIndex to every flow rule,
        so ASTs and call graphs are built once per invocation."""
        sources = [
            SourceFile("src/repro/core/a.py", "def f():\n    return 1\n"),
            SourceFile("src/repro/core/b.py", "def g():\n    return 2\n"),
        ]
        r5, r7 = GT5(), GT7()
        lint_sources(sources, [r5, r7])
        assert r5.project is r7.project
        assert r5.project is not None


# -- CLI: --list-suppressions -------------------------------------------------


class TestListSuppressionsCLI:
    def test_reports_sentinels_with_justification(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "x = w == 0.0  # noqa: GT004 -- exact sentinel\n"
            "y = 1  # noqa: GT001\n"
        )
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--list-suppressions", str(f)],
            capture_output=True, text=True, cwd=REPO,
        )
        assert proc.returncode == 0
        assert "GT004 -- exact sentinel" in proc.stdout
        assert "(no justification)" in proc.stdout
        assert "2 suppression(s)" in proc.stderr

    def test_clean_tree_has_no_bare_gt_sentinels(self):
        """Every GT sentinel in the shipped tree carries a justification
        (the inventory GT009 enforces)."""
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--list-suppressions", "src", "tools"],
            capture_output=True, text=True, cwd=REPO,
        )
        assert proc.returncode == 0
        for line in proc.stdout.splitlines():
            if "GT" in line.split(" -- ")[0]:
                assert "(no justification)" not in line, line
