"""File-sharing simulation: success accounting, refresh, policies."""

import numpy as np
import pytest

from repro.baselines.notrust import NoTrustSelector, ReputationSelector
from repro.core.config import GossipTrustConfig
from repro.errors import ValidationError
from repro.peers.behavior import PeerPopulation
from repro.workload.files import FileCatalog
from repro.workload.filesharing import FileSharingSimulation


def make_sim(n=60, gamma=0.2, policy=None, **kwargs):
    pop = PeerPopulation.build(n, malicious_fraction=gamma, rng=0)
    cat = FileCatalog(800, n, rng=1)
    if policy is None:
        policy = ReputationSelector(n, rng=2)
    cfg = GossipTrustConfig(n=n, engine_mode="probe", seed=3)
    return FileSharingSimulation(
        pop, cat, policy, refresh_interval=200, config=cfg, rng=4, **kwargs
    ), pop


class TestRun:
    def test_success_rate_bounds_and_accounting(self):
        sim, _pop = make_sim()
        res = sim.run(600)
        assert 0.0 <= res.success_rate <= 1.0
        assert res.queries == 600
        assert res.refreshes == 3
        assert len(res.window_success) == 3

    def test_all_honest_high_success(self):
        sim, _pop = make_sim(gamma=0.0)
        res = sim.run(400)
        assert res.success_rate > 0.85

    def test_reputation_beats_notrust_under_attack(self):
        gt_sim, _ = make_sim(gamma=0.3)
        gt = gt_sim.run(1500)
        nt_sim, _ = make_sim(gamma=0.3, policy=NoTrustSelector(rng=2), use_gossip=False)
        nt = nt_sim.run(1500)
        assert gt.steady_state_success > nt.steady_state_success

    def test_gossip_steps_accounted_when_gossiping(self):
        sim, _pop = make_sim()
        res = sim.run(400)
        assert res.gossip_steps > 0

    def test_exact_refresh_mode(self):
        sim, _pop = make_sim(use_gossip=False)
        res = sim.run(400)
        assert res.gossip_steps == 0
        assert res.refreshes == 2

    def test_reputation_updates_policy_scores(self):
        policy = ReputationSelector(60, rng=2)
        sim, _pop = make_sim(policy=policy)
        before = policy.scores
        sim.run(400)
        assert not np.allclose(before, policy.scores)

    def test_ledger_accumulates(self):
        sim, _pop = make_sim()
        sim.run(300)
        assert sim.ledger.transactions > 0

    def test_trailing_partial_window_reported(self):
        sim, _pop = make_sim()
        res = sim.run(250)  # one refresh at 200, partial window of 50
        assert len(res.window_success) == 2

    def test_reputation_model_rates(self):
        sim, _pop = make_sim(inauthentic_model="reputation")
        res = sim.run(400)
        assert 0.0 <= res.success_rate <= 1.0


class TestValidation:
    def test_catalog_population_mismatch(self):
        pop = PeerPopulation.build(10, rng=0)
        cat = FileCatalog(100, 20, rng=1)
        with pytest.raises(ValidationError):
            FileSharingSimulation(pop, cat, NoTrustSelector())

    def test_bad_refresh_interval(self):
        pop = PeerPopulation.build(10, rng=0)
        cat = FileCatalog(100, 10, rng=1)
        with pytest.raises(ValidationError):
            FileSharingSimulation(pop, cat, NoTrustSelector(), refresh_interval=0)

    def test_bad_model_name(self):
        pop = PeerPopulation.build(10, rng=0)
        cat = FileCatalog(100, 10, rng=1)
        with pytest.raises(ValidationError):
            FileSharingSimulation(
                pop, cat, NoTrustSelector(), inauthentic_model="vibes"
            )

    def test_bad_query_count(self):
        sim, _pop = make_sim()
        with pytest.raises(ValidationError):
            sim.run(0)


class TestFloodMode:
    def make_flood_sim(self, ttl=3):
        from repro.network.overlay import Overlay
        from repro.network.topology import gnutella_like

        n = 60
        pop = PeerPopulation.build(n, malicious_fraction=0.2, rng=0)
        cat = FileCatalog(800, n, rng=1)
        overlay = Overlay(gnutella_like(n, rng=2), rng=3)
        cfg = GossipTrustConfig(n=n, engine_mode="probe", seed=3)
        sim = FileSharingSimulation(
            pop, cat, ReputationSelector(n, rng=2), refresh_interval=200,
            config=cfg, overlay=overlay, flood_ttl=ttl, rng=4,
        )
        return sim, overlay

    def test_flood_mode_runs(self):
        sim, _overlay = self.make_flood_sim()
        res = sim.run(400)
        assert 0.0 <= res.success_rate <= 1.0

    def test_small_ttl_loses_responders(self):
        wide, _ = self.make_flood_sim(ttl=7)
        narrow, _ = self.make_flood_sim(ttl=1)
        r_wide = wide.run(400)
        r_narrow = narrow.run(400)
        assert r_narrow.unresolved >= r_wide.unresolved

    def test_departed_owners_unreachable(self):
        sim, overlay = self.make_flood_sim(ttl=7)
        # Cut the requesters off from everything except themselves.
        for node in overlay.alive_nodes().tolist()[1:]:
            if overlay.alive_count > 2:
                overlay.leave(node)
        res = sim.run(100)
        # Almost every query now fails: either the requester departed,
        # or the two survivors rarely own the requested file.
        assert res.unresolved >= 90

    def test_overlay_size_mismatch_rejected(self):
        from repro.network.overlay import Overlay
        from repro.network.topology import gnutella_like

        pop = PeerPopulation.build(10, rng=0)
        cat = FileCatalog(50, 10, rng=1)
        overlay = Overlay(gnutella_like(20, rng=2))
        with pytest.raises(ValidationError):
            FileSharingSimulation(pop, cat, NoTrustSelector(), overlay=overlay)
