"""PowerTrust baseline: LRW acceleration and power-node bias."""

import numpy as np
import pytest

from repro.baselines.powertrust import PowerTrust
from repro.errors import ValidationError


class TestFixedPoint:
    def test_converges_to_probability_vector(self, random_S):
        res = PowerTrust(random_S, ring_bits=None).compute()
        assert res.converged
        assert res.vector.sum() == pytest.approx(1.0)
        assert np.all(res.vector >= -1e-12)

    def test_power_nodes_reported(self, random_S):
        res = PowerTrust(random_S, power_fraction=0.1, ring_bits=None).compute()
        assert len(res.power_nodes) == max(1, int(random_S.n * 0.1))
        # Power nodes are the top of the converged ranking.
        top = set(np.argsort(-res.vector)[: len(res.power_nodes)].tolist())
        assert set(res.power_nodes) == top

    def test_lookahead_reduces_iterations(self, random_S):
        with_lrw = PowerTrust(
            random_S, lookahead=True, alpha=0.0 + 1e-9, ring_bits=None
        ).compute()
        without = PowerTrust(
            random_S, lookahead=False, alpha=0.0 + 1e-9, ring_bits=None
        ).compute()
        assert with_lrw.iterations < without.iterations

    def test_lookahead_same_fixed_point_at_alpha_zero(self, random_S):
        # S and S@S share the principal left eigenvector.
        a = PowerTrust(random_S, lookahead=True, alpha=1e-12, ring_bits=None).compute()
        b = PowerTrust(random_S, lookahead=False, alpha=1e-12, ring_bits=None).compute()
        assert np.allclose(a.vector, b.vector, atol=1e-6)


class TestOverhead:
    def test_dht_accounting_enabled_by_default(self, random_S):
        res = PowerTrust(random_S).compute()
        assert res.dht_lookups == random_S.nnz
        assert res.dht_hops > 0

    def test_pure_math_mode_skips_dht(self, random_S):
        res = PowerTrust(random_S, ring_bits=None).compute()
        assert res.dht_lookups == 0
        assert res.dht_hops == 0


class TestValidation:
    def test_rejects_bad_alpha(self, random_S):
        with pytest.raises(ValidationError):
            PowerTrust(random_S, alpha=1.0)

    def test_rejects_bad_power_fraction(self, random_S):
        with pytest.raises(ValidationError):
            PowerTrust(random_S, power_fraction=2.0)
