"""Query stream semantics."""

import numpy as np
import pytest

from repro.distributions.query import TwoSegmentZipf
from repro.errors import ValidationError
from repro.workload.queries import QueryStream


class TestGeneration:
    def test_queries_well_formed(self):
        qs = QueryStream(50, 1000, rng=0)
        for q in qs.take(200):
            assert 0 <= q.requester < 50
            assert 1 <= q.file_rank <= 1000
        assert qs.issued == 200

    def test_indices_sequential(self):
        qs = QueryStream(10, 100, rng=1)
        idxs = [q.index for q in qs.take(5)]
        assert idxs == [0, 1, 2, 3, 4]

    def test_requesters_roughly_uniform(self):
        qs = QueryStream(4, 100, rng=2)
        counts = np.zeros(4)
        for q in qs.take(8000):
            counts[q.requester] += 1
        assert np.all(np.abs(counts / 8000 - 0.25) < 0.03)

    def test_popular_files_queried_more(self):
        qs = QueryStream(10, 5000, rng=3)
        ranks = np.array([q.file_rank for q in qs.take(20_000)])
        assert (ranks <= 250).mean() > (ranks > 4000).mean()

    def test_custom_popularity(self):
        pop = TwoSegmentZipf(100, head_exponent=2.0, tail_exponent=2.0, break_rank=10)
        qs = QueryStream(5, 100, popularity=pop, rng=4)
        ranks = [q.file_rank for q in qs.take(1000)]
        assert max(ranks) <= 100

    def test_popularity_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            QueryStream(5, 100, popularity=TwoSegmentZipf(50))

    def test_deterministic(self):
        a = [q.file_rank for q in QueryStream(5, 100, rng=9).take(50)]
        b = [q.file_rank for q in QueryStream(5, 100, rng=9).take(50)]
        assert a == b

    def test_take_validation(self):
        qs = QueryStream(5, 100)
        with pytest.raises(ValidationError):
            list(qs.take(-1))

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            QueryStream(0, 10)
        with pytest.raises(ValidationError):
            QueryStream(10, 0)
