"""Runtime invariant sanitizer: unit, arming, armed-contract, fault injection.

Three layers of coverage:

* unit tests of every :class:`InvariantSanitizer` check (pass + raise,
  structured context on the raised :class:`InvariantViolation`);
* arming plumbing — the ``REPRO_SANITIZE`` env flag, the config field,
  factory arming, and the ``CycleEngine.arm_sanitizer`` contract;
* the armed cross-engine contract (every engine completes a clean cycle
  with checks demonstrably firing) plus *fault injection*: a corrupted
  x-mass, a negative w, NaN mass, and a de-normalized trust-matrix row
  must each raise an ``InvariantViolation`` naming where it happened.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    ENV_FLAG,
    InvariantSanitizer,
    sanitize_enabled,
    set_sanitize_enabled,
)
from repro.core.config import GossipTrustConfig
from repro.errors import InvariantViolation, ReproError
from repro.gossip import engine as engine_mod
from repro.gossip.factory import engine_names, make_engine
from repro.gossip.pushsum import push_sum
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngStreams
from scipy import sparse

N = 16
SEED = 42
ENGINES = engine_names()


@pytest.fixture(autouse=True)
def _reset_forced_flag():
    """Never leak a set_sanitize_enabled override across tests."""
    yield
    set_sanitize_enabled(None)


@pytest.fixture(scope="module")
def fixed_S():
    gen = np.random.default_rng(SEED)
    raw = gen.random((N, N)) * (gen.random((N, N)) < 0.6)
    np.fill_diagonal(raw, 0.0)
    for i in range(N):
        if raw[i].sum() == 0:
            raw[i, (i + 1) % N] = 1.0
    return TrustMatrix.from_dense_raw(raw)


def build(name, seed=SEED, **options):
    opts = {"epsilon": 1e-6, "max_rounds": 400, "max_steps": 20_000}
    opts.update(options)
    return make_engine(name, n=N, rng=RngStreams(seed), **opts)


# -- unit: the checks --------------------------------------------------------


class TestInvariantSanitizerUnit:
    def test_rel_tol_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantSanitizer(rel_tol=0.0)

    def test_counters_and_begin_cycle(self):
        san = InvariantSanitizer()
        assert (san.checks, san.cycle) == (0, 0)
        assert san.begin_cycle("sync") == 1
        assert san.begin_cycle("sync") == 2
        san.check_finite("x", np.ones(3))
        san.check_nonnegative("w", np.ones(3))
        san.check_mass("m", 1.0, 1.0)
        assert san.checks == 3

    def test_violation_is_repro_error(self):
        assert issubclass(InvariantViolation, ReproError)

    def test_check_finite_raises_with_context(self):
        san = InvariantSanitizer()
        san.begin_cycle("sync")
        arr = np.ones(5)
        arr[3] = np.nan
        with pytest.raises(InvariantViolation) as exc:
            san.check_finite("estimates", arr, step=7)
        err = exc.value
        assert err.invariant == "finite"
        assert err.engine == "sync"
        assert err.cycle == 1
        assert err.step == 7
        assert err.node == 3
        assert "cycle 1" in str(err) and "step 7" in str(err)

    def test_check_nonnegative(self):
        san = InvariantSanitizer()
        san.check_nonnegative("w", np.zeros(4))  # zero is legal mass
        bad = np.array([0.5, -1e-3, 0.5])
        with pytest.raises(InvariantViolation) as exc:
            san.check_nonnegative("w", bad, step=2)
        assert exc.value.invariant == "nonnegative-mass"
        assert exc.value.node == 1

    def test_check_nonnegative_routes_nan_to_finite(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolation) as exc:
            san.check_nonnegative("w", np.array([1.0, np.nan]))
        assert exc.value.invariant == "finite"

    def test_check_mass_tolerance(self):
        san = InvariantSanitizer(rel_tol=1e-9)
        san.check_mass("sum(x)", 1.0 + 1e-12, 1.0)  # within tolerance
        with pytest.raises(InvariantViolation) as exc:
            san.check_mass("sum(x)", 1.01, 1.0, step=5)
        assert exc.value.invariant == "mass-conservation"
        assert exc.value.step == 5

    def test_check_mass_rejects_nan_total(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolation):
            san.check_mass("sum(x)", float("nan"), 1.0)

    def test_check_mass_bounded_one_sided(self):
        san = InvariantSanitizer()
        san.check_mass_bounded("mass", 0.4, 1.0)  # loss is fine
        with pytest.raises(InvariantViolation) as exc:
            san.check_mass_bounded("mass", 1.5, 1.0)
        assert "created mass" in str(exc.value)

    def test_check_allclose(self):
        san = InvariantSanitizer()
        a = np.full((3, 4), 2.0)
        san.check_allclose("partials", a, a.copy())
        b = a.copy()
        b[2, 0] += 1e-3
        with pytest.raises(InvariantViolation) as exc:
            san.check_allclose("partials", b, a)
        assert exc.value.invariant == "exact-agreement"
        assert exc.value.node == 2

    def test_check_row_stochastic(self):
        san = InvariantSanitizer()
        san.check_row_stochastic(np.ones(5))
        sums = np.ones(5)
        sums[4] = 0.7
        with pytest.raises(InvariantViolation) as exc:
            san.check_row_stochastic(sums)
        assert exc.value.invariant == "row-stochastic"
        assert exc.value.node == 4


# -- arming plumbing ---------------------------------------------------------


class TestArming:
    def test_env_flag_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False), ("junk", False),
        ]:
            monkeypatch.setenv(ENV_FLAG, value)
            assert sanitize_enabled() is expected, value
        monkeypatch.delenv(ENV_FLAG)
        assert sanitize_enabled() is False

    def test_forced_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        set_sanitize_enabled(False)
        assert sanitize_enabled() is False
        set_sanitize_enabled(None)
        assert sanitize_enabled() is True

    def test_config_default_follows_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert GossipTrustConfig(n=4).sanitize is False
        monkeypatch.setenv(ENV_FLAG, "1")
        assert GossipTrustConfig(n=4).sanitize is True

    def test_config_with_updates(self):
        cfg = GossipTrustConfig(n=4)
        assert cfg.with_updates(sanitize=True).sanitize is True

    @pytest.mark.parametrize("name", ENGINES)
    def test_factory_arms_from_config(self, name):
        cfg = GossipTrustConfig(n=N, seed=SEED, sanitize=True)
        assert make_engine(name, cfg).sanitizer is not None
        cfg_off = GossipTrustConfig(n=N, seed=SEED, sanitize=False)
        assert make_engine(name, cfg_off).sanitizer is None

    def test_arm_and_disarm(self):
        set_sanitize_enabled(False)  # isolate from a REPRO_SANITIZE=1 env
        eng = build("sync")
        assert eng.sanitizer is None
        san = eng.arm_sanitizer()
        assert eng.sanitizer is san
        shared = InvariantSanitizer(rel_tol=1e-6)
        assert eng.arm_sanitizer(shared) is shared
        eng.disarm_sanitizer()
        assert eng.sanitizer is None


# -- armed cross-engine contract --------------------------------------------


@pytest.mark.parametrize("name", ENGINES)
class TestArmedContract:
    def test_clean_cycle_passes_with_checks_firing(self, name, fixed_S):
        eng = build(name)
        san = eng.arm_sanitizer()
        res = eng.run_cycle(fixed_S, np.full(N, 1.0 / N))
        assert res.v_next.shape == (N,)
        assert san.cycle == 1, "begin_cycle hook did not run"
        assert san.checks > 0, "no invariant checks executed"
        assert san.engine == name

    def test_arming_does_not_change_results(self, name, fixed_S):
        v = np.full(N, 1.0 / N)
        plain = build(name).run_cycle(fixed_S, v)
        armed_engine = build(name)
        armed_engine.arm_sanitizer()
        armed = armed_engine.run_cycle(fixed_S, v)
        assert np.array_equal(plain.v_next, armed.v_next)
        assert plain.steps == armed.steps

    def test_cycle_counter_advances_per_cycle(self, name, fixed_S):
        eng = build(name)
        san = eng.arm_sanitizer()
        v = np.full(N, 1.0 / N)
        eng.run_cycle(fixed_S, v)
        eng.run_cycle(fixed_S, v)
        assert san.cycle == 2


class TestArmedUnderFaults:
    def test_message_engine_tolerates_genuine_loss(self, fixed_S):
        # Real drops destroy mass; the one-sided law must NOT fire.
        eng = build("message", loss_rate=0.2, max_rounds=60)
        san = eng.arm_sanitizer()
        res = eng.run_cycle(fixed_S, np.full(N, 1.0 / N))
        assert san.checks > 0
        assert res.messages_dropped > 0

    def test_sync_legacy_kernel_checks_fire(self, fixed_S):
        eng = build("sync", kernel="legacy")
        san = eng.arm_sanitizer()
        eng.run_cycle(fixed_S, np.full(N, 1.0 / N))
        assert san.checks > 0


# -- fault injection: each check must catch its fault ------------------------


class _CorruptingMatvecs:
    """Wraps the C segment-sum kernel; injects mass after some calls."""

    def __init__(self, real, after_calls=6):
        self.real = real
        self.calls = 0
        self.after_calls = after_calls

    def __call__(self, n_row, n_col, n_vecs, indptr, indices, data, other, out):
        self.real(n_row, n_col, n_vecs, indptr, indices, data, other, out)
        self.calls += 1
        if self.calls == self.after_calls:
            out[0] += 1.0  # conjure x-mass from nothing


class _TamperingTransport(Transport):
    """Transport that corrupts every gossip payload in a chosen way."""

    def __init__(self, sim, tamper, **kwargs):
        super().__init__(sim, **kwargs)
        self.tamper = tamper

    def send(self, src, dst, payload, *, kind="data", size=0):
        if kind == "gossip":
            self.tamper(payload)
        return super().send(src, dst, payload, kind=kind, size=size)


def _message_engine_with(tamper, seed=SEED):
    sim = Simulator()
    streams = RngStreams(seed)
    transport = _TamperingTransport(
        sim, tamper, latency=1.0, rng=streams.get("engine-net")
    )
    return make_engine(
        "message", n=N, rng=streams, sim=sim, transport=transport,
        max_rounds=50,
    )


class TestFaultInjection:
    def test_sync_corrupted_x_mass_raises(self, fixed_S):
        if engine_mod._csr_matvecs is None:
            pytest.skip("scipy csr_matvecs kernel unavailable")
        eng = build("sync", densify_threshold=0.0)  # dense loop from step 1
        eng.arm_sanitizer()
        corrupting = _CorruptingMatvecs(engine_mod._csr_matvecs)
        real = engine_mod._csr_matvecs
        engine_mod._csr_matvecs = corrupting
        try:
            with pytest.raises(InvariantViolation) as exc:
                eng.run_cycle(fixed_S, np.full(N, 1.0 / N))
        finally:
            engine_mod._csr_matvecs = real
        err = exc.value
        assert err.invariant == "mass-conservation"
        assert err.engine == "sync"
        assert err.cycle == 1
        assert err.step is not None and err.step >= 1

    def test_message_negative_w_raises(self):
        def negate_w(payload):
            payload._w *= -1.0

        eng = _message_engine_with(negate_w)
        eng.arm_sanitizer()
        S = [{(i + 1) % N: 1.0} for i in range(N)]
        with pytest.raises(InvariantViolation) as exc:
            eng.run_cycle(S, np.full(N, 1.0 / N))
        err = exc.value
        assert err.invariant in ("nonnegative-mass", "mass-conservation")
        assert err.engine == "message"
        assert err.cycle == 1
        assert err.step is not None

    def test_message_nan_mass_raises(self):
        def poison(payload):
            payload._x[0] = np.nan

        eng = _message_engine_with(poison)
        eng.arm_sanitizer()
        S = [{(i + 1) % N: 1.0} for i in range(N)]
        with pytest.raises(InvariantViolation) as exc:
            eng.run_cycle(S, np.full(N, 1.0 / N))
        assert exc.value.invariant == "finite"
        assert exc.value.step is not None

    def test_message_duplicated_mass_raises(self):
        # Double delivery creates mass — the one-sided law catches it
        # even though drops normally excuse exact conservation.
        def duplicate(payload):
            payload._x *= 2.0
            payload._w *= 2.0

        eng = _message_engine_with(duplicate)
        eng.arm_sanitizer()
        S = [{(i + 1) % N: 1.0} for i in range(N)]
        with pytest.raises(InvariantViolation) as exc:
            eng.run_cycle(S, np.full(N, 1.0 / N))
        assert exc.value.invariant == "mass-conservation"

    def test_push_sum_sanitizer_catches_created_mass(self, monkeypatch):
        from repro.gossip import pushsum as pushsum_mod

        real_step = pushsum_mod.push_sum_step
        state = {"calls": 0}

        def corrupt_step(x, w, targets):
            nx, nw = real_step(x, w, targets)
            state["calls"] += 1
            if state["calls"] == 1:
                nx[0] += 5.0  # conjure x-mass from nothing
            return nx, nw

        monkeypatch.setattr(pushsum_mod, "push_sum_step", corrupt_step)
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolation) as exc:
            push_sum(np.arange(8, dtype=float), np.ones(8), rng=0, sanitizer=san)
        assert exc.value.invariant == "mass-conservation"
        assert exc.value.engine == "push-sum"
        assert exc.value.step == 1

    def test_denormalized_trust_row_raises_when_enabled(self):
        raw = np.full((4, 4), 0.25)
        raw[2, :] = 0.4  # row sums to 1.6: not stochastic
        bad = sparse.csr_matrix(raw)
        # Pre-validated path skips checks when the sanitizer is off...
        set_sanitize_enabled(False)
        TrustMatrix(bad, _validated=True)
        # ...and re-validates (raising structured context) when armed.
        set_sanitize_enabled(True)
        with pytest.raises(InvariantViolation) as exc:
            TrustMatrix(bad, _validated=True)
        assert exc.value.invariant == "row-stochastic"
        assert exc.value.node == 2

    def test_valid_trust_matrix_passes_when_enabled(self, fixed_S):
        set_sanitize_enabled(True)
        TrustMatrix(fixed_S.sparse(), _validated=True)
