"""Topology generators: structure, connectivity, degree laws.

networkx is used here purely as an oracle for connectivity/degree
checks — the generators themselves are from scratch.
"""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ValidationError
from repro.network.topology import (
    Topology,
    gnutella_like,
    powerlaw_graph,
    random_graph,
    small_world_graph,
)


def to_nx(topo: Topology) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(topo.n))
    g.add_edges_from(topo.edges())
    return g


class TestTopology:
    def test_basic_accessors(self):
        t = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert t.n == 4
        assert t.edge_count == 3
        assert t.neighbors(1) == (0, 2)
        assert t.degree(0) == 1
        assert t.has_edge(2, 3) and t.has_edge(3, 2)
        assert not t.has_edge(0, 3)

    def test_duplicate_edges_collapse(self):
        t = Topology(3, [(0, 1), (1, 0), (0, 1)])
        assert t.edge_count == 1

    def test_rejects_self_loops_and_out_of_range(self):
        with pytest.raises(ValidationError):
            Topology(3, [(1, 1)])
        with pytest.raises(ValidationError):
            Topology(3, [(0, 3)])
        with pytest.raises(ValidationError):
            Topology(0, [])

    def test_components_and_connectivity(self):
        t = Topology(5, [(0, 1), (2, 3)])
        comps = t.components()
        assert len(comps) == 3
        assert not t.is_connected()
        assert Topology(3, [(0, 1), (1, 2)]).is_connected()

    def test_components_sorted_largest_first(self):
        t = Topology(6, [(0, 1), (1, 2), (3, 4)])
        comps = t.components()
        assert len(comps[0]) >= len(comps[1]) >= len(comps[2])

    def test_bfs_distances(self):
        t = Topology(4, [(0, 1), (1, 2)])
        d = t.bfs_distances(0)
        assert d.tolist() == [0, 1, 2, -1]
        with pytest.raises(ValidationError):
            t.bfs_distances(7)

    def test_degrees_array(self):
        t = Topology(3, [(0, 1), (0, 2)])
        assert t.degrees().tolist() == [2, 1, 1]

    def test_edges_iterates_each_once(self):
        t = Topology(3, [(0, 1), (1, 2), (0, 2)])
        edges = list(t.edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)

    def test_with_edges(self):
        t = Topology(3, [(0, 1)]).with_edges([(1, 2)])
        assert t.edge_count == 2

    def test_diameter_estimate_positive(self):
        t = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert t.diameter_estimate(rng=0) == 3

    def test_single_node(self):
        t = Topology(1, [])
        assert t.is_connected()
        assert t.edge_count == 0


class TestRandomGraph:
    def test_connected(self):
        t = random_graph(100, avg_degree=4.0, rng=0)
        assert to_nx(t).number_of_nodes() == 100
        assert nx.is_connected(to_nx(t))

    def test_average_degree_close_to_target(self):
        t = random_graph(500, avg_degree=8.0, rng=1)
        assert t.degrees().mean() == pytest.approx(8.0, rel=0.25)

    def test_deterministic(self):
        a = random_graph(50, rng=7)
        b = random_graph(50, rng=7)
        assert list(a.edges()) == list(b.edges())

    def test_rejects_bad_degree(self):
        with pytest.raises(ValidationError):
            random_graph(10, avg_degree=20.0)

    def test_single_node(self):
        assert random_graph(1).n == 1


class TestPowerlawGraph:
    def test_connected(self):
        t = powerlaw_graph(300, m=3, rng=2)
        assert nx.is_connected(to_nx(t))

    def test_degree_distribution_is_heavy_tailed(self):
        t = powerlaw_graph(2000, m=3, rng=3)
        degs = t.degrees()
        # Hubs exist: max degree far above the median.
        assert degs.max() > 5 * np.median(degs)

    def test_average_degree_about_2m(self):
        t = powerlaw_graph(1000, m=4, rng=4)
        assert t.degrees().mean() == pytest.approx(8.0, rel=0.15)

    def test_tiny_network_is_clique(self):
        t = powerlaw_graph(3, m=5, rng=0)
        assert t.edge_count == 3

    def test_rejects_bad_m(self):
        with pytest.raises(ValidationError):
            powerlaw_graph(10, m=0)


class TestSmallWorld:
    def test_connected_and_right_degree(self):
        t = small_world_graph(200, k=6, beta=0.1, rng=5)
        assert nx.is_connected(to_nx(t))
        assert t.degrees().mean() == pytest.approx(6.0, rel=0.1)

    def test_beta_zero_is_ring_lattice(self):
        t = small_world_graph(20, k=4, beta=0.0, rng=0)
        assert all(d == 4 for d in t.degrees())

    def test_beta_one_still_connected(self):
        t = small_world_graph(100, k=4, beta=1.0, rng=6)
        assert nx.is_connected(to_nx(t))

    def test_rejects_odd_k(self):
        with pytest.raises(ValidationError):
            small_world_graph(10, k=3)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValidationError):
            small_world_graph(10, k=4, beta=1.5)


class TestGnutellaLike:
    def test_connected_power_law(self):
        t = gnutella_like(1000, avg_degree=6, rng=8)
        assert nx.is_connected(to_nx(t))
        assert t.degrees().mean() == pytest.approx(6.0, rel=0.2)

    def test_deterministic(self):
        assert list(gnutella_like(100, rng=9).edges()) == list(
            gnutella_like(100, rng=9).edges()
        )
