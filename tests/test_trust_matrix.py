"""Trust matrix: Eq. 1 normalization, stochasticity, dangling rows."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ValidationError
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix


class TestFromDenseRaw:
    def test_rows_are_normalized(self, small_raw):
        S = TrustMatrix.from_dense_raw(small_raw)
        dense = S.dense()
        assert np.allclose(dense.sum(axis=1), 1.0)
        # Eq. 1 check on row 0: raw (0, 3, 1, 0) -> (0, .75, .25, 0)
        assert dense[0].tolist() == pytest.approx([0.0, 0.75, 0.25, 0.0])

    def test_dangling_row_gets_uniform_fallback(self, small_raw):
        S = TrustMatrix.from_dense_raw(small_raw)
        assert S.row(3).tolist() == pytest.approx([0.25] * 4)

    def test_dangling_row_custom_fallback(self, small_raw):
        fb = np.array([0.0, 0.0, 0.0, 1.0])
        S = TrustMatrix.from_dense_raw(small_raw, fallback=fb)
        assert S.row(3).tolist() == pytest.approx([0.0, 0.0, 0.0, 1.0])

    def test_diagonal_zeroed(self):
        raw = np.array([[5.0, 1.0], [1.0, 5.0]])
        S = TrustMatrix.from_dense_raw(raw)
        assert S.entry(0, 0) == 0.0
        assert S.entry(0, 1) == 1.0

    def test_negative_raw_rejected(self):
        with pytest.raises(ValidationError):
            TrustMatrix.from_dense_raw(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_bad_fallback_rejected(self, small_raw):
        with pytest.raises(ValidationError):
            TrustMatrix.from_dense_raw(small_raw, fallback=np.array([0.5, 0.5, 0.5, 0.5]))


class TestFromLedger:
    def test_matches_dense_construction(self, small_raw):
        ledger = FeedbackLedger(4)
        for i in range(4):
            for j in range(4):
                if i != j and small_raw[i, j] > 0:
                    ledger.set_score(i, j, small_raw[i, j])
        S_ledger = TrustMatrix.from_ledger(ledger)
        S_dense = TrustMatrix.from_dense_raw(small_raw)
        assert np.allclose(S_ledger.dense(), S_dense.dense())

    def test_from_raw_entries(self):
        S = TrustMatrix.from_raw(3, [(0, 1, 2.0), (0, 2, 2.0), (1, 0, 1.0), (2, 0, 1.0)])
        assert S.entry(0, 1) == pytest.approx(0.5)
        assert S.entry(1, 0) == pytest.approx(1.0)


class TestConstructorValidation:
    def test_accepts_stochastic(self):
        S = TrustMatrix(sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))
        assert S.n == 2

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.array([[0.0, 0.5], [1.0, 0.0]])))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.ones((2, 3)) / 3))

    def test_rejects_entries_above_one(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.array([[1.5, -0.5], [0.5, 0.5]])))


class TestOperations:
    def test_aggregate_is_transpose_product(self, random_S):
        v = np.random.default_rng(0).random(random_S.n)
        v /= v.sum()
        expected = random_S.dense().T @ v
        assert np.allclose(random_S.aggregate(v), expected)

    def test_aggregate_preserves_total_mass(self, random_S):
        v = np.full(random_S.n, 1.0 / random_S.n)
        out = random_S.aggregate(v)
        assert out.sum() == pytest.approx(1.0)

    def test_aggregate_validates_size(self, small_S):
        with pytest.raises(ValidationError):
            small_S.aggregate(np.ones(3))

    def test_row_and_column_views(self, small_S):
        assert small_S.row(0).sum() == pytest.approx(1.0)
        col = small_S.column(1)
        dense = small_S.dense()
        assert np.allclose(col, dense[:, 1])

    def test_spectral_gap_orders_eigenvalues(self, random_S):
        lam1, lam2 = random_S.spectral_gap()
        assert lam1 >= lam2 >= 0
        assert lam1 == pytest.approx(1.0, abs=1e-6)  # stochastic matrix

    def test_nnz(self, small_S):
        assert small_S.nnz >= 7  # 7 raw entries + fallback row


class TestSparseRowsCache:
    def test_rows_match_csr(self, small_S):
        rows = small_S.sparse_rows()
        dense = small_S.dense()
        assert len(rows) == small_S.n
        for i, row in enumerate(rows):
            for j, val in row.items():
                assert val == pytest.approx(dense[i, j])
            assert sum(row.values()) == pytest.approx(1.0)

    def test_cached_per_instance(self, small_S):
        assert small_S.sparse_rows() is small_S.sparse_rows()

    def test_distinct_matrices_never_share_rows(self, small_raw):
        # Regression for the old id(S)-keyed module cache: a fresh matrix
        # allocated at a recycled id must never see the old rows.  The
        # cache now lives on the instance, so two matrices with different
        # contents always produce their own row views.
        a = TrustMatrix.from_dense_raw(small_raw)
        rows_a = [dict(r) for r in a.sparse_rows()]
        del a  # allow id reuse, as in the original hazard
        flipped = small_raw[::-1, ::-1].copy()
        b = TrustMatrix.from_dense_raw(flipped)
        rows_b = b.sparse_rows()
        dense_b = b.dense()
        for i, row in enumerate(rows_b):
            for j, val in row.items():
                assert val == pytest.approx(dense_b[i, j])
        assert rows_a != rows_b

    def test_invalidate_cache_rebuilds_views(self, small_S):
        rows_before = small_S.sparse_rows()
        # Mutate the underlying CSR in place (normally forbidden) and
        # invalidate: both the row view and the transpose must refresh.
        csr = small_S.sparse()
        csr.data[:] = csr.data[::-1].copy()
        small_S.invalidate_cache()
        rows_after = small_S.sparse_rows()
        assert rows_after is not rows_before
        v = np.zeros(small_S.n)
        v[0] = 1.0
        assert np.allclose(small_S.aggregate(v), small_S.dense().T @ v)

    def test_engines_see_fresh_rows_after_invalidate(self):
        # End-to-end guard: an engine consuming sparse_rows() must track
        # a mutated-and-invalidated matrix, never stale cached rows.
        from repro.gossip.base import local_rows

        raw = np.array([[0.0, 2.0, 0.0], [1.0, 0.0, 1.0], [3.0, 1.0, 0.0]])
        S = TrustMatrix.from_dense_raw(raw)
        first = local_rows(S, 3)
        csr = S.sparse()
        csr.data[:] = csr.data[::-1].copy()
        S.invalidate_cache()
        second = local_rows(S, 3)
        assert first != second


class TestRowsToCsr:
    def test_roundtrips_sparse_rows(self, small_S):
        from repro.trust.matrix import rows_to_csr

        n = small_S.n
        back = rows_to_csr(small_S.sparse_rows(), n)
        assert (back != small_S.sparse()).nnz == 0

    def test_unsorted_row_keys_are_canonicalized(self):
        from repro.trust.matrix import rows_to_csr

        rows = [{2: 0.5, 0: 0.5}, {}, {1: 1.0}]
        mat = rows_to_csr(rows, 3)
        assert mat.has_sorted_indices
        expected = np.array([[0.5, 0.0, 0.5], [0, 0, 0], [0, 1.0, 0]])
        np.testing.assert_array_equal(mat.toarray(), expected)

    def test_row_count_must_match(self):
        from repro.errors import ValidationError
        from repro.trust.matrix import rows_to_csr

        with pytest.raises(ValidationError):
            rows_to_csr([{0: 1.0}], 2)


class TestApplyRowDeltas:
    def _rebuild_reference(self, ledger):
        """The from-scratch matrix the patched one must equal."""
        return TrustMatrix.from_ledger(ledger)

    def test_patched_matches_from_scratch_rebuild(self, rng):
        n = 40
        ledger = FeedbackLedger(n)
        for i in range(n):
            for j in rng.choice(n - 1, size=5, replace=False):
                j = int(j) + (j >= i)
                ledger.set_score(i, int(j), float(1.0 - rng.random()))
        S = TrustMatrix.from_ledger(ledger)
        ledger.clear_dirty()
        # Mutate a handful of rows: one rescored, one extended, one erased.
        ledger.set_score(3, 7, 9.0)
        ledger.add_score(11, 0, 2.5)
        for j, v in list(ledger.row(20).items()):
            ledger.set_score(20, j, 0.0)  # row 20 becomes dangling
        S.apply_row_deltas(ledger.drain_dirty())
        ref = self._rebuild_reference(ledger)
        assert np.allclose(S.dense(), ref.dense())

    def test_unchanged_sparse_rows_keep_identity(self, rng):
        n = 20
        ledger = FeedbackLedger(n)
        for i in range(n):
            ledger.set_score(i, (i + 1) % n, 1.0)
            ledger.set_score(i, (i + 2) % n, float(1.0 + rng.random()))
        S = TrustMatrix.from_ledger(ledger)
        before = S.sparse_rows()
        kept = {i: before[i] for i in range(n) if i != 5}
        ledger.clear_dirty()
        ledger.set_score(5, 0, 4.0)
        S.apply_row_deltas(ledger.drain_dirty())
        after = S.sparse_rows()
        for i, row in kept.items():
            assert after[i] is row  # identity, not just equality
        raw_row = ledger.row(5)
        total = sum(raw_row.values())
        assert after[5] == pytest.approx(
            {j: v / total for j, v in raw_row.items()}, rel=1e-12
        )

    def test_transpose_stays_coherent(self, small_S):
        v = np.array([0.4, 0.3, 0.2, 0.1])
        small_S.apply_row_deltas({0: {1: 1.0, 3: 3.0}})
        assert np.allclose(small_S.aggregate(v), small_S.dense().T @ v)

    def test_empty_delta_row_gets_uniform_fallback(self, small_S):
        small_S.apply_row_deltas({1: {}})
        assert small_S.row(1).tolist() == pytest.approx([0.25] * 4)

    def test_empty_delta_row_custom_fallback(self, small_S):
        fb = np.array([0.0, 0.0, 0.0, 1.0])
        small_S.apply_row_deltas({1: {}}, fallback=fb)
        assert small_S.row(1).tolist() == pytest.approx([0.0, 0.0, 0.0, 1.0])

    def test_no_deltas_is_a_noop(self, small_S):
        before = small_S.dense()
        small_S.apply_row_deltas({})
        assert np.array_equal(small_S.dense(), before)

    def test_rejects_out_of_range_rater(self, small_S):
        with pytest.raises(ValidationError):
            small_S.apply_row_deltas({4: {0: 1.0}})

    def test_rejects_out_of_range_ratee(self, small_S):
        with pytest.raises(ValidationError):
            small_S.apply_row_deltas({0: {4: 1.0}})

    def test_rejects_self_score(self, small_S):
        with pytest.raises(ValidationError):
            small_S.apply_row_deltas({2: {2: 1.0}})

    def test_rejects_negative_score(self, small_S):
        with pytest.raises(ValidationError):
            small_S.apply_row_deltas({0: {1: -0.5}})

    def test_rows_stay_stochastic_under_armed_sanitizer(self, rng):
        from repro.analysis.sanitizer import set_sanitize_enabled

        n = 25
        raw = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
        np.fill_diagonal(raw, 0.0)
        for i in range(n):
            if raw[i].sum() == 0:
                raw[i, (i + 1) % n] = 1.0
        S = TrustMatrix.from_dense_raw(raw)
        set_sanitize_enabled(True)
        try:
            S.apply_row_deltas({2: {0: 1.0, 5: 2.0}, 7: {}, 9: {1: 0.25}})
        finally:
            set_sanitize_enabled(None)
        assert np.allclose(np.asarray(S.sparse().sum(axis=1)).ravel(), 1.0)
