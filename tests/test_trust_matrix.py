"""Trust matrix: Eq. 1 normalization, stochasticity, dangling rows."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ValidationError
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix


class TestFromDenseRaw:
    def test_rows_are_normalized(self, small_raw):
        S = TrustMatrix.from_dense_raw(small_raw)
        dense = S.dense()
        assert np.allclose(dense.sum(axis=1), 1.0)
        # Eq. 1 check on row 0: raw (0, 3, 1, 0) -> (0, .75, .25, 0)
        assert dense[0].tolist() == pytest.approx([0.0, 0.75, 0.25, 0.0])

    def test_dangling_row_gets_uniform_fallback(self, small_raw):
        S = TrustMatrix.from_dense_raw(small_raw)
        assert S.row(3).tolist() == pytest.approx([0.25] * 4)

    def test_dangling_row_custom_fallback(self, small_raw):
        fb = np.array([0.0, 0.0, 0.0, 1.0])
        S = TrustMatrix.from_dense_raw(small_raw, fallback=fb)
        assert S.row(3).tolist() == pytest.approx([0.0, 0.0, 0.0, 1.0])

    def test_diagonal_zeroed(self):
        raw = np.array([[5.0, 1.0], [1.0, 5.0]])
        S = TrustMatrix.from_dense_raw(raw)
        assert S.entry(0, 0) == 0.0
        assert S.entry(0, 1) == 1.0

    def test_negative_raw_rejected(self):
        with pytest.raises(ValidationError):
            TrustMatrix.from_dense_raw(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_bad_fallback_rejected(self, small_raw):
        with pytest.raises(ValidationError):
            TrustMatrix.from_dense_raw(small_raw, fallback=np.array([0.5, 0.5, 0.5, 0.5]))


class TestFromLedger:
    def test_matches_dense_construction(self, small_raw):
        ledger = FeedbackLedger(4)
        for i in range(4):
            for j in range(4):
                if i != j and small_raw[i, j] > 0:
                    ledger.set_score(i, j, small_raw[i, j])
        S_ledger = TrustMatrix.from_ledger(ledger)
        S_dense = TrustMatrix.from_dense_raw(small_raw)
        assert np.allclose(S_ledger.dense(), S_dense.dense())

    def test_from_raw_entries(self):
        S = TrustMatrix.from_raw(3, [(0, 1, 2.0), (0, 2, 2.0), (1, 0, 1.0), (2, 0, 1.0)])
        assert S.entry(0, 1) == pytest.approx(0.5)
        assert S.entry(1, 0) == pytest.approx(1.0)


class TestConstructorValidation:
    def test_accepts_stochastic(self):
        S = TrustMatrix(sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))
        assert S.n == 2

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.array([[0.0, 0.5], [1.0, 0.0]])))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.ones((2, 3)) / 3))

    def test_rejects_entries_above_one(self):
        with pytest.raises(ValidationError):
            TrustMatrix(sparse.csr_matrix(np.array([[1.5, -0.5], [0.5, 0.5]])))


class TestOperations:
    def test_aggregate_is_transpose_product(self, random_S):
        v = np.random.default_rng(0).random(random_S.n)
        v /= v.sum()
        expected = random_S.dense().T @ v
        assert np.allclose(random_S.aggregate(v), expected)

    def test_aggregate_preserves_total_mass(self, random_S):
        v = np.full(random_S.n, 1.0 / random_S.n)
        out = random_S.aggregate(v)
        assert out.sum() == pytest.approx(1.0)

    def test_aggregate_validates_size(self, small_S):
        with pytest.raises(ValidationError):
            small_S.aggregate(np.ones(3))

    def test_row_and_column_views(self, small_S):
        assert small_S.row(0).sum() == pytest.approx(1.0)
        col = small_S.column(1)
        dense = small_S.dense()
        assert np.allclose(col, dense[:, 1])

    def test_spectral_gap_orders_eigenvalues(self, random_S):
        lam1, lam2 = random_S.spectral_gap()
        assert lam1 >= lam2 >= 0
        assert lam1 == pytest.approx(1.0, abs=1e-6)  # stochastic matrix

    def test_nnz(self, small_S):
        assert small_S.nnz >= 7  # 7 raw entries + fallback row
