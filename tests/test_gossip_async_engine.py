"""Asynchronous (Poisson-clock) gossip engine."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gossip.async_engine import AsyncMessageGossipEngine
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.trust.matrix import TrustMatrix


def build(n=24, loss=0.0, seed=0, **kwargs):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=seed), rng=seed + 1)
    transport = Transport(sim, latency=0.3, loss_rate=loss, rng=seed + 2)
    engine = AsyncMessageGossipEngine(
        sim, transport, overlay, rng=seed + 3, **kwargs
    )
    return sim, overlay, transport, engine


def rows_and_prior(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    np.fill_diagonal(raw, 0)
    for i in range(n):
        if raw[i].sum() == 0:
            raw[i, (i + 1) % n] = 1.0
    S = TrustMatrix.from_dense_raw(raw)
    csr = S.sparse()
    rows = [
        dict(zip(csr.indices[csr.indptr[i]:csr.indptr[i+1]].tolist(),
                 csr.data[csr.indptr[i]:csr.indptr[i+1]].tolist()))
        for i in range(n)
    ]
    return rows, np.full(n, 1.0 / n)


class TestAsyncConvergence:
    def test_converges_to_exact_product(self):
        n = 24
        _sim, _ov, _tr, engine = build(n, epsilon=1e-6)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.converged
        assert res.gossip_error < 1e-3
        assert np.allclose(res.v_next, res.exact, rtol=1e-2, atol=1e-6)

    def test_equivalent_rounds_same_order_as_sync(self):
        """Per-send cost of async gossip matches the synchronous analysis."""
        from repro.gossip.message_engine import MessageGossipEngine

        n = 24
        rows, v = rows_and_prior(n)
        _sim, _ov, _tr, async_engine = build(n, epsilon=1e-6)
        async_rounds = async_engine.run_cycle(rows, v).steps

        sim = Simulator()
        overlay = Overlay(random_graph(n, rng=0), rng=1)
        transport = Transport(sim, latency=0.3, rng=2)
        sync_engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-6, round_interval=1.0, rng=3
        )
        sync_rounds = sync_engine.run_cycle(rows, v).steps
        assert async_rounds < 4 * sync_rounds  # same order, coarser detector

    def test_mass_conserved_without_faults(self):
        n = 16
        _sim, _ov, _tr, engine = build(n)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert res.mass_lost_fraction == pytest.approx(0.0, abs=1e-9)

    def test_survives_message_loss(self):
        n = 24
        _sim, _ov, _tr, engine = build(n, loss=0.1)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert np.all(np.isfinite(res.v_next))
        assert res.messages_dropped > 0

    def test_time_budget_respected(self):
        n = 16
        sim, _ov, _tr, engine = build(n, epsilon=1e-15, max_time=30.0)
        rows, v = rows_and_prior(n)
        res = engine.run_cycle(rows, v)
        assert not res.converged
        assert sim.now <= 31.0


class TestAsyncValidation:
    def test_row_count_checked(self):
        n = 8
        _sim, _ov, _tr, engine = build(n)
        with pytest.raises(ValidationError):
            engine.run_cycle([{}] * (n - 1), np.full(n, 1.0 / n))

    def test_constructor_validation(self):
        sim = Simulator()
        overlay = Overlay(random_graph(8, avg_degree=3.0, rng=0))
        transport = Transport(sim, latency=0.3)
        with pytest.raises(ValidationError):
            AsyncMessageGossipEngine(sim, transport, overlay, epsilon=0.0)
        with pytest.raises(ValidationError):
            AsyncMessageGossipEngine(sim, transport, overlay, mean_interval=0.0)
        with pytest.raises(ValidationError):
            AsyncMessageGossipEngine(sim, transport, overlay, max_time=0.0)
