"""Partner strategies: registry, oracle parity, membership repair."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NetworkError, ValidationError
from repro.gossip.partnering import (
    BrahmsMembership,
    GlobalSampler,
    HyParViewMembership,
    NeighborSampler,
    PartnerStrategy,
    ViewHealth,
    _mix64,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.network.overlay import Overlay
from repro.network.topology import random_graph
from repro.network.transport import Transport
from repro.sim.engine import Simulator


def build_substrate(n=24, loss=0.0, seed=0, latency=0.5):
    sim = Simulator()
    overlay = Overlay(random_graph(n, rng=seed), rng=seed + 1)
    transport = Transport(sim, latency=latency, loss_rate=loss, rng=seed + 2)
    return sim, overlay, transport


def bind_strategy(strategy, n=24, loss=0.0, seed=0):
    """Bind a strategy and route every transport message into it."""
    sim, overlay, transport = build_substrate(n=n, loss=loss, seed=seed)
    for node in range(n):
        transport.register(node, strategy.on_message)
    strategy.bind(sim, transport, overlay)
    return sim, overlay, transport


def run_maintenance(sim, strategy, until):
    strategy.start()
    sim.run(until=until)
    strategy.stop()


class TestRegistry:
    def test_all_four_registered(self):
        assert strategy_names() == ("brahms", "global", "hyparview", "neighbors")

    def test_make_strategy_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown partner strategy"):
            make_strategy("chord")

    def test_make_strategy_filters_foreign_kwargs(self):
        s = make_strategy("hyparview", rng=0, active_size=3, view_size=99)
        assert isinstance(s, HyParViewMembership)
        assert s.active_size == 3

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_strategy(GlobalSampler)

    def test_register_requires_name(self):
        class Nameless(PartnerStrategy):
            def partner(self, node):
                return None

            def view(self, node):
                return ()

        with pytest.raises(ConfigurationError, match="no registry name"):
            register_strategy(Nameless)


class TestMix64:
    def test_stable_across_calls(self):
        assert _mix64(42, 7) == _mix64(42, 7)

    def test_seed_and_input_sensitivity(self):
        assert _mix64(42, 7) != _mix64(43, 7)
        assert _mix64(42, 7) != _mix64(42, 8)

    def test_fits_in_64_bits(self):
        for x in range(50):
            assert 0 <= _mix64(1, x) < (1 << 64)


class TestLifecycle:
    def test_partner_before_bind_raises(self):
        s = GlobalSampler(rng=0)
        with pytest.raises(NetworkError, match="not bound"):
            s.partner(0)

    def test_rebind_to_other_overlay_rejected(self):
        s = GlobalSampler(rng=0)
        bind_strategy(s, n=8)
        sim2, overlay2, transport2 = build_substrate(n=8, seed=9)
        with pytest.raises(ValidationError, match="already bound"):
            s.bind(sim2, transport2, overlay2)

    def test_rebind_same_overlay_is_idempotent(self):
        s = GlobalSampler(rng=0)
        sim, overlay, transport = bind_strategy(s, n=8)
        s.bind(sim, transport, overlay)  # no raise


class TestGlobalSampler:
    def test_bit_identical_to_overlay_oracle(self):
        """The default strategy must replay Overlay.random_partner exactly."""
        n, seed = 20, 3
        direct = Overlay(random_graph(n, rng=seed), rng=seed + 1)
        s = GlobalSampler(rng=123)
        _, via_strategy, _ = bind_strategy(s, n=n, seed=seed)
        picks_direct = [direct.random_partner(i) for i in range(n)]
        picks_strategy = [s.partner(i) for i in range(n)]
        assert picks_direct == picks_strategy

    def test_view_is_every_other_live_node(self):
        s = GlobalSampler(rng=0)
        _, overlay, _ = bind_strategy(s, n=10)
        overlay.leave(3)
        assert 3 not in s.view(0)
        assert len(s.view(0)) == 8

    def test_closed_form_health(self):
        s = GlobalSampler(rng=0)
        _, overlay, _ = bind_strategy(s, n=10)
        h = s.health()
        assert isinstance(h, ViewHealth)
        assert h.live_nodes == 10
        assert h.mean_live_degree == 9.0
        assert h.isolated_live_nodes == 0
        assert h.components == 1


class TestNeighborSampler:
    def test_partner_is_a_live_neighbor(self):
        s = NeighborSampler(rng=0)
        _, overlay, _ = bind_strategy(s, n=16)
        for node in range(16):
            p = s.partner(node)
            if p is not None:
                assert p in overlay.neighbors(node, live_only=True)

    def test_health_over_topology_view(self):
        s = NeighborSampler(rng=0)
        bind_strategy(s, n=16)
        h = s.health()
        assert h.live_nodes == 16
        assert h.mean_live_degree > 0


class TestHyParView:
    def test_initial_views_populated_and_mirrored(self):
        s = HyParViewMembership(rng=0)
        _, overlay, _ = bind_strategy(s, n=24)
        for node in range(24):
            assert s.active[node], f"node {node} has an empty active view"
            for peer in s.active[node]:
                assert node in s.active[peer]

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            HyParViewMembership(active_size=0)
        with pytest.raises(ValidationError):
            HyParViewMembership(passive_size=0)
        with pytest.raises(ValidationError):
            HyParViewMembership(interval=0.0)

    def test_partner_drawn_from_active_view(self):
        s = HyParViewMembership(rng=0)
        bind_strategy(s, n=24)
        for node in range(24):
            assert s.partner(node) in s.active[node]

    def test_crash_burst_is_detected_and_repaired(self):
        """Probes must evict the dead and promotion must reconnect everyone."""
        s = HyParViewMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=32, loss=0.05)
        run_maintenance(sim, s, until=10.0)
        s.start()
        for victim in range(8):
            overlay.leave(victim)
        sim.run(until=150.0)
        s.stop()
        assert s.evictions > 0
        h = s.health()
        assert h.live_nodes == 24
        assert h.isolated_live_nodes == 0
        assert h.components == 1

    def test_node_joined_rebootstraps(self):
        s = HyParViewMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=24)
        overlay.leave(5)
        s.start()
        sim.run(until=20.0)
        overlay.join(5)
        s.node_joined(5)
        sim.run(until=60.0)
        s.stop()
        assert s.active[5], "rejoined node never re-entered the active views"
        assert any(5 in s.active[p] for p in range(24) if p != 5)

    def test_retry_stats_surface_reliable_counters(self):
        s = HyParViewMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=16, loss=0.3)
        run_maintenance(sim, s, until=80.0)
        stats = s.retry_stats()
        assert stats["sent"] > 0
        assert stats["retries"] > 0  # 30% loss must trigger some resends


class TestBrahms:
    def test_initial_views_populated(self):
        s = BrahmsMembership(rng=0)
        bind_strategy(s, n=24)
        for node in range(24):
            assert s.views[node]
            assert node not in s.views[node]

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            BrahmsMembership(view_size=1)
        with pytest.raises(ValidationError):
            BrahmsMembership(alpha=0.6, beta=0.6)
        with pytest.raises(ValidationError):
            BrahmsMembership(sampler_slots=0)

    def test_samplers_hold_observed_ids(self):
        s = BrahmsMembership(rng=0)
        bind_strategy(s, n=24)
        ids = s._sampler_ids(0)
        assert ids
        assert all(0 <= i < 24 for i in ids)

    def test_crash_burst_is_detected_and_repaired(self):
        s = BrahmsMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=32, loss=0.05)
        run_maintenance(sim, s, until=10.0)
        s.start()
        for victim in range(8):
            overlay.leave(victim)
        sim.run(until=150.0)
        s.stop()
        h = s.health()
        assert h.live_nodes == 24
        assert h.isolated_live_nodes == 0
        assert h.components == 1

    def test_node_joined_flushes_and_bootstraps(self):
        s = BrahmsMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=24)
        overlay.leave(5)
        s.start()
        sim.run(until=20.0)
        overlay.join(5)
        s.node_joined(5)
        assert s.views[5], "bootstrap must refill the view immediately"
        sim.run(until=60.0)
        s.stop()
        assert s.health().isolated_live_nodes == 0

    def test_view_recomputation_consumes_push_pull(self):
        s = BrahmsMembership(interval=2.0, rng=0)
        sim, overlay, _ = bind_strategy(s, n=24)
        run_maintenance(sim, s, until=30.0)
        assert s.maintenance_messages > 0
        assert s.promotions > 0  # views were recomputed from buffers


class TestHealthComponents:
    def test_split_views_report_two_components(self):
        s = HyParViewMembership(rng=0)
        bind_strategy(s, n=8)
        # Force two cliques at the membership layer.
        for node in range(8):
            group = {0, 1, 2, 3} if node < 4 else {4, 5, 6, 7}
            s.active[node] = group - {node}
            s.passive[node] = set()
        h = s.health()
        assert h.components == 2
        assert h.isolated_live_nodes == 0

    def test_isolated_node_counted(self):
        s = HyParViewMembership(rng=0)
        _, overlay, _ = bind_strategy(s, n=8)
        s.active[0] = set()
        s.passive[0] = set()
        # Drop node 0 from everyone else's views too.
        for node in range(1, 8):
            s.active[node].discard(0)
            s.passive[node].discard(0)
        h = s.health()
        assert h.isolated_live_nodes >= 1
