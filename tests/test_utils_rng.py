"""RNG stream management: determinism and independence."""

import itertools
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

import repro
from repro.utils.rng import RngStreams, as_generator, spawn_streams


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(3)
        gen = as_generator(ss)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        a = as_generator(None).random(8)
        b = as_generator(None).random(8)
        assert not np.array_equal(a, b)


class TestSpawnStreams:
    def test_streams_are_independent_and_deterministic(self):
        s1 = spawn_streams(42, ["a", "b"])
        s2 = spawn_streams(42, ["a", "b"])
        assert np.array_equal(s1["a"].random(4), s2["a"].random(4))
        assert not np.array_equal(s1["a"].random(4), s1["b"].random(4))

    def test_from_generator_source(self):
        streams = spawn_streams(np.random.default_rng(1), ["x"])
        assert isinstance(streams["x"], np.random.Generator)

    def test_children_pairwise_independent(self):
        # SeedSequence spawning must give every named child its own
        # stream: no pair of children may emit the same draws, and none
        # may mirror the root seed's direct stream.
        names = ["topology", "feedback", "gossip", "workload", "threat"]
        streams = spawn_streams(7, names)
        draws = {name: streams[name].random(32) for name in names}
        for a, b in itertools.combinations(names, 2):
            assert not np.array_equal(draws[a], draws[b]), (a, b)
        root_draws = as_generator(7).random(32)
        for name in names:
            assert not np.array_equal(draws[name], root_draws), name

    def test_child_order_is_positional(self):
        # The name->stream mapping is by position in the registry, so the
        # same ordered names always get the same streams.
        one = spawn_streams(13, ["a", "b"])
        two = spawn_streams(13, ["b", "a"])
        assert np.array_equal(one["a"].random(8), two["b"].random(8))


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(5)
        assert streams.get("gossip") is streams.get("gossip")

    def test_reproducible_across_instances(self):
        a = RngStreams(9).get("topology").random(6)
        b = RngStreams(9).get("topology").random(6)
        assert np.array_equal(a, b)

    def test_distinct_names_are_independent(self):
        streams = RngStreams(5)
        x = streams.get("one").random(16)
        y = streams.get("two").random(16)
        assert not np.array_equal(x, y)

    def test_adding_consumer_does_not_shift_existing(self):
        # Stream draws depend only on first-request order up to that point.
        a = RngStreams(3)
        first_a = a.get("alpha").random(4)
        b = RngStreams(3)
        _ = b.get("alpha")  # same first request
        _ = b.get("beta")  # extra consumer afterwards
        first_b_alpha = RngStreams(3).get("alpha").random(4)
        assert np.array_equal(first_a, first_b_alpha)

    def test_seed_property(self):
        assert RngStreams(11).seed == 11
        assert RngStreams(None).seed is None

    def test_names_tracks_spawned(self):
        streams = RngStreams(0)
        streams.get("z")
        streams.get("a")
        assert set(streams.names()) == {"z", "a"}

    def test_generator_seed_source(self):
        streams = RngStreams(np.random.default_rng(4))
        assert streams.seed is None
        assert isinstance(streams.get("s"), np.random.Generator)


_SUBPROCESS_SNIPPET = """\
import json
from repro.utils.rng import RngStreams, spawn_streams

streams = RngStreams(123)
spawned = spawn_streams(123, ["a", "b"])
print(json.dumps({
    "gossip": streams.get("gossip").random(8).tolist(),
    "topology": streams.get("topology").random(8).tolist(),
    "a": spawned["a"].random(8).tolist(),
    "b": spawned["b"].random(8).tolist(),
}))
"""


class TestCrossProcessDeterminism:
    def test_streams_match_across_processes(self):
        # The paper's repeat-over-seeds protocol assumes a root seed pins
        # every stream regardless of which process draws it (the sweep
        # runner fans cycles over worker processes).  Run the same
        # derivations in a fresh interpreter and compare draws exactly.
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, PYTHONPATH=src_dir)
        out = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        remote = json.loads(out.stdout)

        streams = RngStreams(123)
        spawned = spawn_streams(123, ["a", "b"])
        local = {
            "gossip": streams.get("gossip").random(8).tolist(),
            "topology": streams.get("topology").random(8).tolist(),
            "a": spawned["a"].random(8).tolist(),
            "b": spawned["b"].random(8).tolist(),
        }
        assert remote == local
