"""Cross-engine contract suite: every registered engine, one set of laws.

Each engine listed in :func:`repro.gossip.factory.engine_names` is built
through :func:`make_engine` and driven through one aggregation cycle on
the same fixed 16-node matrix.  The contract every engine must honor:

* constructible via the factory (unknown options silently dropped);
* mass conservation — the returned vector sums to ~1;
* agreement with the exact product ``S^T v``;
* determinism under a fixed seed;
* :class:`GossipCycleResult` field invariants (steps, mode, telemetry
  counters, per-cycle step log).
"""

import numpy as np
import pytest

from repro.gossip.base import CycleEngine, GossipCycleResult
from repro.gossip.factory import engine_names, make_engine
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngStreams

N = 16
SEED = 42
ENGINES = engine_names()


@pytest.fixture(scope="module")
def fixed_S():
    """One fixed, well-conditioned 16-node trust matrix for all engines."""
    gen = np.random.default_rng(SEED)
    raw = gen.random((N, N)) * (gen.random((N, N)) < 0.6)
    np.fill_diagonal(raw, 0.0)
    for i in range(N):
        if raw[i].sum() == 0:
            raw[i, (i + 1) % N] = 1.0
    return TrustMatrix.from_dense_raw(raw)


def build(name, seed=SEED, **options):
    """One engine via the factory, tight epsilon, fresh seeded substrate."""
    opts = {"epsilon": 1e-6, "max_rounds": 400, "max_steps": 20_000}
    opts.update(options)
    return make_engine(name, n=N, rng=RngStreams(seed), **opts)


def run_one(name, S, seed=SEED, **options):
    eng = build(name, seed=seed, **options)
    v = np.full(N, 1.0 / N)
    return eng.run_cycle(S, v)


@pytest.mark.parametrize("name", ENGINES)
class TestContract:
    def test_constructible_and_is_cycle_engine(self, name):
        eng = build(name)
        assert isinstance(eng, CycleEngine)
        assert eng.name == name
        assert eng.cycle_steps == []

    def test_factory_drops_unknown_options(self, name, fixed_S):
        # The sweep loops pass one option dict to heterogeneous engines;
        # options an engine does not take must not break construction.
        eng = build(name, mode="probe", probe_columns=8, ring_bits=16,
                    round_interval=2.0, completely_unknown_option=1)
        res = eng.run_cycle(fixed_S, np.full(N, 1.0 / N))
        assert isinstance(res, GossipCycleResult)

    def test_mass_conservation(self, name, fixed_S):
        res = run_one(name, fixed_S)
        assert res.v_next.shape == (N,)
        assert np.all(np.isfinite(res.v_next))
        assert res.v_next.sum() == pytest.approx(1.0, abs=1e-6)

    def test_agreement_with_exact_product(self, name, fixed_S):
        res = run_one(name, fixed_S)
        exact = fixed_S.dense().T @ np.full(N, 1.0 / N)
        assert np.allclose(res.exact, exact, atol=1e-12)
        assert np.allclose(res.v_next, exact, rtol=5e-2, atol=1e-5)

    def test_seeded_determinism(self, name, fixed_S):
        a = run_one(name, fixed_S, seed=7)
        b = run_one(name, fixed_S, seed=7)
        assert np.array_equal(a.v_next, b.v_next)
        assert a.steps == b.steps
        assert a.messages_sent == b.messages_sent

    def test_result_field_invariants(self, name, fixed_S):
        eng = build(name)
        v = np.full(N, 1.0 / N)
        res = eng.run_cycle(fixed_S, v)
        assert isinstance(res, GossipCycleResult)
        assert res.steps >= 1
        assert res.converged
        assert isinstance(res.mode, str) and res.mode
        assert res.gossip_error >= 0.0
        assert res.messages_sent >= 0
        assert res.messages_dropped >= 0
        assert 0.0 <= res.mass_lost_fraction <= 1.0 or np.isnan(
            res.mass_lost_fraction
        )
        # Engines log per-cycle step counts and can reset them.
        assert eng.cycle_steps == [res.steps]
        eng.clear_stats()
        assert eng.cycle_steps == []

    def test_accepts_matrix_array_and_sparse(self, name, fixed_S):
        # The contract takes TrustMatrix, ndarray, or scipy sparse alike.
        v = np.full(N, 1.0 / N)
        r1 = build(name).run_cycle(fixed_S, v)
        r2 = build(name).run_cycle(fixed_S.dense(), v)
        r3 = build(name).run_cycle(fixed_S.sparse(), v)
        for r in (r2, r3):
            assert np.allclose(r.exact, r1.exact, atol=1e-12)


class TestStructuredExactness:
    def test_structured_is_exact_in_log2_rounds(self, fixed_S):
        res = run_one("structured", fixed_S)
        assert res.gossip_error == 0.0
        assert res.steps == 4  # ceil(log2 16)
