"""Generator processes: sleeping, waiting, composition, interruption."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, ProcessInterrupt


class TestBasics:
    def test_yield_number_sleeps(self):
        sim = Simulator()
        log = []

        def proc():
            yield 3.0
            log.append(sim.now)
            yield 2.0
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [3.0, 5.0]

    def test_process_completion_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.triggered
        assert p.value == "done"
        assert not p.alive

    def test_yield_event_receives_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.process(waiter())
        sim.call_in(2.0, ev.succeed, "ping")
        sim.run()
        assert got == ["ping"]

    def test_yield_already_triggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(5)
        got = []

        def waiter():
            got.append((yield ev))

        sim.process(waiter())
        sim.run()
        assert got == [5]

    def test_processes_compose(self):
        sim = Simulator()

        def child():
            yield 4.0
            return 42

        def parent():
            result = yield sim.process(child())
            return result * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 84

    def test_zero_delay_yield(self):
        sim = Simulator()
        log = []

        def proc():
            yield 0.0
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0]


class TestErrors:
    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)

    def test_negative_sleep_crashes_process(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError, match="negative sleep"):
            sim.run()

    def test_bad_yield_value_crashes_process(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()


class TestInterrupt:
    def test_interrupt_delivers_reason(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield 100.0
            except ProcessInterrupt as intr:
                caught.append(intr.reason)

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt, "churn")
        sim.run()
        assert caught == ["churn"]
        assert not p.alive

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield 100.0
            except ProcessInterrupt:
                pass
            yield 1.0
            log.append(sim.now)

        p = sim.process(proc())
        sim.call_in(2.0, p.interrupt)
        sim.run()
        assert log == [3.0]
