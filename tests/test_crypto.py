"""Simulated identity-based signatures: authenticity semantics."""

import pytest

from repro.crypto.ibs import IdentitySigner, SignedEnvelope, verify_envelope
from repro.crypto.pkg import PrivateKeyGenerator
from repro.errors import CryptoError, SignatureError


@pytest.fixture
def pkg():
    return PrivateKeyGenerator(b"test-master-secret-32-bytes-long")


class TestPKG:
    def test_extract_is_deterministic(self, pkg):
        assert pkg.extract("node:1") == pkg.extract("node:1")

    def test_distinct_identities_distinct_keys(self, pkg):
        assert pkg.extract("node:1") != pkg.extract("node:2")

    def test_different_masters_different_keys(self):
        a = PrivateKeyGenerator(b"a" * 32).extract("node:1")
        b = PrivateKeyGenerator(b"b" * 32).extract("node:1")
        assert a != b

    def test_issued_identities_tracked(self, pkg):
        pkg.extract("node:7")
        assert "node:7" in pkg.issued_identities

    def test_short_master_rejected(self):
        with pytest.raises(CryptoError):
            PrivateKeyGenerator(b"short")

    def test_empty_identity_rejected(self, pkg):
        with pytest.raises(CryptoError):
            pkg.extract("")

    def test_fresh_master_when_omitted(self):
        a = PrivateKeyGenerator().extract("x")
        b = PrivateKeyGenerator().extract("x")
        assert a != b


class TestSignVerify:
    def test_roundtrip(self, pkg):
        signer = IdentitySigner("node:3", pkg)
        env = signer.sign(b"gossip payload")
        assert verify_envelope(env, pkg) is True

    def test_string_payload_accepted(self, pkg):
        env = IdentitySigner("node:3", pkg).sign("text")
        assert verify_envelope(env, pkg)

    def test_tampered_payload_rejected(self, pkg):
        env = IdentitySigner("node:3", pkg).sign(b"payload")
        forged = SignedEnvelope(env.identity, b"evil payload", env.signature)
        assert verify_envelope(forged, pkg) is False

    def test_identity_spoofing_rejected(self, pkg):
        env = IdentitySigner("node:3", pkg).sign(b"payload")
        spoofed = SignedEnvelope("node:4", env.payload, env.signature)
        assert verify_envelope(spoofed, pkg) is False

    def test_signature_from_wrong_key_rejected(self, pkg):
        attacker = IdentitySigner("node:666", pkg)
        env = attacker.sign(b"payload")
        forged = SignedEnvelope("node:3", env.payload, env.signature)
        assert verify_envelope(forged, pkg) is False

    def test_raise_on_failure_mode(self, pkg):
        env = IdentitySigner("node:3", pkg).sign(b"payload")
        bad = SignedEnvelope(env.identity, b"x", env.signature)
        with pytest.raises(SignatureError):
            verify_envelope(bad, pkg, raise_on_failure=True)

    def test_cross_pkg_verification_fails(self, pkg):
        other = PrivateKeyGenerator(b"another-master-secret-32-bytes!!")
        env = IdentitySigner("node:3", pkg).sign(b"payload")
        assert verify_envelope(env, other) is False

    def test_envelope_requires_identity(self):
        with pytest.raises(CryptoError):
            SignedEnvelope("", b"x", b"sig")
