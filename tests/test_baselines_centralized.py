"""Centralized eigenvector oracle: two methods, one answer."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedEigenvector
from repro.errors import ConvergenceError, ValidationError


class TestPowerIteration:
    def test_stationary_distribution_of_known_chain(self):
        # Two-state chain: P(0->1)=1, P(1->0)=0.5, P(1->1)=0.5.
        S = np.array([[0.0, 1.0], [0.5, 0.5]])
        v = CentralizedEigenvector(S).compute()
        # Stationary: pi = (1/3, 2/3).
        assert v.tolist() == pytest.approx([1 / 3, 2 / 3], rel=1e-6)

    def test_uniform_chain_uniform_stationary(self):
        n = 5
        S = np.full((n, n), 1.0 / n)
        v = CentralizedEigenvector(S).compute()
        assert np.allclose(v, 1.0 / n)

    def test_result_is_probability_vector(self, random_S):
        v = CentralizedEigenvector(random_S).compute()
        assert v.sum() == pytest.approx(1.0)
        assert np.all(v >= -1e-12)

    def test_fixed_point_property(self, random_S):
        v = CentralizedEigenvector(random_S).compute()
        assert np.allclose(random_S.aggregate(v), v, atol=1e-9)

    def test_iteration_metadata(self, random_S):
        res = CentralizedEigenvector(random_S).power_iteration()
        assert res.iterations > 0
        assert res.residual < 1e-12

    def test_budget_exhaustion(self, random_S):
        ce = CentralizedEigenvector(random_S, tol=1e-15, max_iter=2)
        with pytest.raises(ConvergenceError):
            ce.power_iteration()


class TestCrossCheck:
    def test_arpack_agrees_with_power_iteration(self, random_S):
        v = CentralizedEigenvector(random_S).compute(cross_check=True)
        assert v.sum() == pytest.approx(1.0)

    def test_arpack_small_dense_path(self):
        S = np.array([[0.0, 1.0], [0.5, 0.5]])
        v = CentralizedEigenvector(S).arpack()
        assert v.tolist() == pytest.approx([1 / 3, 2 / 3], rel=1e-6)

    def test_arpack_large_sparse_path(self, rng):
        n = 40
        raw = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
        np.fill_diagonal(raw, 0)
        for i in range(n):
            if raw[i].sum() == 0:
                raw[i, (i + 1) % n] = 1
        from repro.trust.matrix import TrustMatrix

        S = TrustMatrix.from_dense_raw(raw)
        pi = CentralizedEigenvector(S).power_iteration().vector
        ar = CentralizedEigenvector(S).arpack()
        assert np.allclose(pi, ar, atol=1e-6)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            CentralizedEigenvector(np.ones((2, 3)))

    def test_rejects_bad_tol(self):
        with pytest.raises(ValidationError):
            CentralizedEigenvector(np.eye(2), tol=0.0)
