"""Engine registry/factory, config-driven selection, oracle decoupling,
and per-cycle telemetry."""

import numpy as np
import pytest

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.errors import ConfigurationError
from repro.gossip.base import CycleEngine, GossipCycleResult
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.factory import (
    DEFAULT_ENGINE,
    engine_names,
    make_engine,
    register_engine,
)
from repro.metrics.telemetry import CycleRecord, CycleTelemetry
from repro.utils.rng import RngStreams


class TestRegistry:
    def test_all_four_engines_registered(self):
        assert set(engine_names()) >= {"sync", "message", "async", "structured"}
        assert DEFAULT_ENGINE in engine_names()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="sync"):
            make_engine("warp-drive", n=8)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_engine("sync", lambda *a: None)

    def test_replace_allows_override_and_restore(self):
        from repro.gossip.factory import _build_sync

        seen = {}

        def spy(n, config, streams, sim, transport, overlay, options):
            seen["n"] = n
            return _build_sync(n, config, streams, sim, transport, overlay, options)

        register_engine("sync", spy, replace=True)
        try:
            eng = make_engine("sync", n=8)
            assert seen["n"] == 8
            assert isinstance(eng, SynchronousGossipEngine)
        finally:
            register_engine("sync", _build_sync, replace=True)


class TestMakeEngine:
    def test_builds_each_engine_with_matching_name(self):
        for name in engine_names():
            eng = make_engine(name, n=12, rng=RngStreams(0))
            assert isinstance(eng, CycleEngine)
            assert eng.name == name

    def test_n_mismatch_rejected(self):
        cfg = GossipTrustConfig(n=10)
        with pytest.raises(ConfigurationError):
            make_engine("sync", cfg, n=20)

    def test_seed_like_rng_accepted(self):
        a = make_engine("sync", n=10, rng=5, epsilon=1e-6)
        b = make_engine("sync", n=10, rng=RngStreams(5), epsilon=1e-6)
        v = np.full(10, 0.1)
        S = np.eye(10)
        assert np.array_equal(a.run_cycle(S, v).v_next, b.run_cycle(S, v).v_next)


class TestConfigEngineField:
    def test_engine_field_validated(self):
        with pytest.raises(ConfigurationError, match="registered"):
            GossipTrustConfig(n=8, engine="bogus")

    def test_engine_field_drives_system(self, random_S):
        cfg = GossipTrustConfig(
            n=random_S.n, engine="structured", delta=1e-3, seed=0
        )
        result = GossipTrust(random_S, cfg).run(raise_on_budget=False)
        assert all(r.mode == "structured" for r in result.cycle_results)

    def test_engine_string_argument_overrides_config(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=0)
        system = GossipTrust(random_S, cfg, engine="structured")
        result = system.run(raise_on_budget=False)
        assert result.cycle_results[0].mode == "structured"


class TestOracleDecoupling:
    def test_skip_reference_makes_zero_oracle_calls(self, random_S, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("oracle called despite compute_reference=False")

        monkeypatch.setattr(
            "repro.core.gossiptrust.exact_global_reputation", boom
        )
        cfg = GossipTrustConfig(n=random_S.n, seed=1)
        result = GossipTrust(random_S, cfg).run(compute_reference=False)
        assert result.converged
        assert result.aggregation_error is None
        assert result.exact_reference is None

    def test_config_default_skips_reference(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=1, compute_reference=False)
        result = GossipTrust(random_S, cfg).run()
        assert result.aggregation_error is None

    def test_reference_on_by_default(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=1)
        result = GossipTrust(random_S, cfg).run()
        assert result.aggregation_error is not None
        assert result.exact_reference is not None
        # Same gossip trajectory either way — the oracle is observational.
        skipped = GossipTrust(random_S, cfg).run(compute_reference=False)
        assert np.array_equal(result.vector, skipped.vector)


class TestTelemetry:
    def test_run_attaches_telemetry(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, seed=2)
        result = GossipTrust(random_S, cfg).run()
        tel = result.telemetry
        assert tel is not None and len(tel) == result.cycles
        assert [r.steps for r in tel] == list(result.steps_per_cycle)
        assert all(r.wall_time >= 0.0 for r in tel)
        assert all(r.mode for r in tel)

    def test_on_cycle_callback_sees_each_record(self, random_S):
        seen = []
        cfg = GossipTrustConfig(n=random_S.n, seed=2)
        GossipTrust(random_S, cfg).run(on_cycle=seen.append)
        assert len(seen) >= 1
        assert all(isinstance(r, CycleRecord) for r in seen)
        assert [r.cycle for r in seen] == list(range(1, len(seen) + 1))

    def test_external_recorder_as_on_cycle(self, random_S):
        recorder = CycleTelemetry()
        cfg = GossipTrustConfig(n=random_S.n, seed=2)
        result = GossipTrust(random_S, cfg).run(telemetry=recorder)
        assert result.telemetry is recorder
        assert len(recorder) == result.cycles

    def test_timed_wraps_any_engine(self, random_S):
        tel = CycleTelemetry()
        eng = make_engine("sync", n=random_S.n, rng=RngStreams(0), epsilon=1e-5)
        res = tel.timed(1, eng, random_S, np.full(random_S.n, 1.0 / random_S.n))
        assert isinstance(res, GossipCycleResult)
        rec = tel.records[0]
        assert rec.cycle == 1 and rec.steps == res.steps
        assert rec.wall_time > 0.0

    def test_summary_and_render(self, random_S):
        tel = CycleTelemetry()
        cfg = GossipTrustConfig(n=random_S.n, seed=3)
        GossipTrust(random_S, cfg).run(telemetry=tel)
        summary = tel.summary()
        assert summary["cycles"] == len(tel)
        assert summary["total_steps"] == sum(r.steps for r in tel)
        line = tel.summary_line()
        assert "cycles" in line and "steps" in line
        rendered = tel.render()
        assert "steps" in rendered
        tel.clear()
        assert len(tel) == 0

    def test_phase_breakdown_recorded_and_summed(self, random_S):
        """Sync cycles carry a phase breakdown; phase_summary totals it."""
        tel = CycleTelemetry()
        cfg = GossipTrustConfig(n=random_S.n, seed=3)
        GossipTrust(random_S, cfg).run(telemetry=tel)
        assert all("kernel" in r.phases for r in tel)
        phases = tel.phase_summary()
        assert set(phases) >= {"setup", "oracle", "kernel"}
        for name, total in phases.items():
            assert total >= 0.0
            assert total == pytest.approx(
                sum(r.phases.get(name, 0.0) for r in tel)
            )
        assert "[phases:" in tel.summary_line()

    def test_phase_summary_empty_without_breakdowns(self):
        tel = CycleTelemetry()
        assert tel.phase_summary() == {}
        assert "[phases:" not in tel.summary_line()


    def test_summary_percentiles_and_rss(self, random_S):
        tel = CycleTelemetry()
        cfg = GossipTrustConfig(n=random_S.n, seed=3)
        GossipTrust(random_S, cfg).run(telemetry=tel)
        summary = tel.summary()
        walls = sorted(r.wall_time for r in tel)
        assert summary["wall_time_max"] == walls[-1]
        assert walls[0] <= summary["wall_time_p50"] <= summary["wall_time_p90"]
        assert summary["wall_time_p90"] <= summary["wall_time_max"]
        # cycles record the recording process's peak RSS (0.0 only where
        # the resource module is unavailable)
        assert summary["peak_rss_kib"] == max(r.peak_rss_kib for r in tel)
        assert all(r.peak_rss_kib >= 0.0 for r in tel)
        line = tel.summary_line()
        assert "p50" in line and "peak rss" in line

    def test_empty_summary_has_percentile_keys(self):
        summary = CycleTelemetry().summary()
        assert summary["wall_time_p50"] == 0.0
        assert summary["wall_time_p90"] == 0.0
        assert summary["wall_time_max"] == 0.0
        assert summary["peak_rss_kib"] == 0.0


class TestConfigKernelFields:
    """config.kernel / dtype / block_rows flow through the factory."""

    def test_factory_forwards_kernel_fields(self):
        cfg = GossipTrustConfig(
            n=64, kernel="sparse", dtype="float32", block_rows=16, seed=0
        )
        eng = make_engine("sync", cfg, rng=RngStreams(0))
        assert eng.kernel == "sparse"
        assert eng.dtype == "float32"
        assert eng.block_rows == 16

    def test_sparse_config_runs_end_to_end(self, random_S):
        # Pin probe mode: sparse auto-selects it, fast at small n would
        # default to full mode (a different — equally valid — trajectory).
        cfg = GossipTrustConfig(
            n=random_S.n, kernel="sparse", engine_mode="probe", seed=2
        )
        base_cfg = GossipTrustConfig(
            n=random_S.n, kernel="fast", engine_mode="probe", seed=2
        )
        sparse_run = GossipTrust(random_S, cfg).run(compute_reference=False)
        fast_run = GossipTrust(random_S, base_cfg).run(compute_reference=False)
        assert sparse_run.converged
        np.testing.assert_allclose(
            sparse_run.vector, fast_run.vector, rtol=0, atol=1e-12
        )
