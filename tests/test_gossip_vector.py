"""Triplet vectors (Algorithm 2 per-node state)."""

import math

import pytest

from repro.errors import ValidationError
from repro.gossip.vector import TripletVector


class TestInitial:
    def test_initialization_rule(self):
        tv = TripletVector.initial(0, {1: 0.6, 2: 0.4}, {0: 0.5})
        # x_j = s_0j * v_0; w only at owner.
        assert tv.triplet(1).x == pytest.approx(0.3)
        assert tv.triplet(2).x == pytest.approx(0.2)
        assert tv.triplet(0).w == 1.0
        assert tv.triplet(1).w == 0.0

    def test_zero_prior_contributes_no_x(self):
        tv = TripletVector.initial(0, {1: 0.6}, {0: 0.0})
        assert tv.triplet(1).x == 0.0
        assert tv.triplet(0).w == 1.0

    def test_negative_score_rejected(self):
        with pytest.raises(ValidationError):
            TripletVector.initial(0, {1: -0.1}, {0: 0.5})


class TestGossipOps:
    def test_halve_splits_and_returns_equal_share(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.5})
        sent = tv.halve()
        assert tv.triplet(1).x == pytest.approx(0.25)
        assert sent.triplet(1).x == pytest.approx(0.25)
        assert tv.triplet(0).w == pytest.approx(0.5)
        assert sent.triplet(0).w == pytest.approx(0.5)

    def test_merge_sums_componentwise(self):
        a = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        b = TripletVector.initial(2, {1: 1.0}, {2: 0.5})
        a.merge(b)
        assert a.triplet(1).x == pytest.approx(1.5)
        assert a.triplet(2).w == 1.0
        assert a.triplet(0).w == 1.0

    def test_halve_merge_conserves_mass(self):
        tv = TripletVector.initial(0, {1: 0.8, 3: 0.2}, {0: 1.0})
        before = tv.mass()
        sent = tv.halve()
        tv.merge(sent)
        after = tv.mass()
        assert after[0] == pytest.approx(before[0])
        assert after[1] == pytest.approx(before[1])

    def test_merge_learns_unknown_ids(self):
        a = TripletVector.initial(0, {}, {0: 1.0})
        b = TripletVector.initial(5, {7: 1.0}, {5: 0.25})
        a.merge(b)
        assert 7 in a.known_ids()
        assert 5 in a.known_ids()


class TestAccessors:
    def test_estimate_semantics(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        assert tv.estimate(0) == pytest.approx(0.0)  # x=0, w=1
        assert tv.estimate(1) == math.inf  # x>0, w=0
        assert math.isnan(tv.estimate(9))  # unknown id

    def test_estimates_array(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        arr = tv.estimates_array(3)
        assert arr[0] == 0.0
        assert arr[1] == math.inf
        assert math.isnan(arr[2])

    def test_payload_size_and_len(self):
        tv = TripletVector.initial(0, {1: 0.5, 2: 0.5}, {0: 1.0})
        assert len(tv) == 3  # ids 0 (w), 1, 2 (x)
        assert tv.payload_size() == 3

    def test_copy_is_deep(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        cp = tv.copy()
        cp.halve()
        assert tv.triplet(1).x == pytest.approx(1.0)

    def test_iteration_yields_sorted_triplets(self):
        tv = TripletVector.initial(0, {5: 0.5, 2: 0.5}, {0: 1.0})
        ids = [t.node for t in tv]
        assert ids == sorted(ids)
