"""Triplet vectors (Algorithm 2 per-node state)."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gossip.vector import TripletVector


class TestInitial:
    def test_initialization_rule(self):
        tv = TripletVector.initial(0, {1: 0.6, 2: 0.4}, {0: 0.5})
        # x_j = s_0j * v_0; w only at owner.
        assert tv.triplet(1).x == pytest.approx(0.3)
        assert tv.triplet(2).x == pytest.approx(0.2)
        assert tv.triplet(0).w == 1.0
        assert tv.triplet(1).w == 0.0

    def test_zero_prior_contributes_no_x(self):
        tv = TripletVector.initial(0, {1: 0.6}, {0: 0.0})
        assert tv.triplet(1).x == 0.0
        assert tv.triplet(0).w == 1.0

    def test_negative_score_rejected(self):
        with pytest.raises(ValidationError):
            TripletVector.initial(0, {1: -0.1}, {0: 0.5})


class TestGossipOps:
    def test_halve_splits_and_returns_equal_share(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.5})
        sent = tv.halve()
        assert tv.triplet(1).x == pytest.approx(0.25)
        assert sent.triplet(1).x == pytest.approx(0.25)
        assert tv.triplet(0).w == pytest.approx(0.5)
        assert sent.triplet(0).w == pytest.approx(0.5)

    def test_merge_sums_componentwise(self):
        a = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        b = TripletVector.initial(2, {1: 1.0}, {2: 0.5})
        a.merge(b)
        assert a.triplet(1).x == pytest.approx(1.5)
        assert a.triplet(2).w == 1.0
        assert a.triplet(0).w == 1.0

    def test_halve_merge_conserves_mass(self):
        tv = TripletVector.initial(0, {1: 0.8, 3: 0.2}, {0: 1.0})
        before = tv.mass()
        sent = tv.halve()
        tv.merge(sent)
        after = tv.mass()
        assert after[0] == pytest.approx(before[0])
        assert after[1] == pytest.approx(before[1])

    def test_merge_learns_unknown_ids(self):
        a = TripletVector.initial(0, {}, {0: 1.0})
        b = TripletVector.initial(5, {7: 1.0}, {5: 0.25})
        a.merge(b)
        assert 7 in a.known_ids()
        assert 5 in a.known_ids()


class TestAccessors:
    def test_estimate_semantics(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        assert tv.estimate(0) == pytest.approx(0.0)  # x=0, w=1
        assert tv.estimate(1) == math.inf  # x>0, w=0
        assert math.isnan(tv.estimate(9))  # unknown id

    def test_estimates_array(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        arr = tv.estimates_array(3)
        assert arr[0] == 0.0
        assert arr[1] == math.inf
        assert math.isnan(arr[2])

    def test_payload_size_and_len(self):
        tv = TripletVector.initial(0, {1: 0.5, 2: 0.5}, {0: 1.0})
        assert len(tv) == 3  # ids 0 (w), 1, 2 (x)
        assert tv.payload_size() == 3

    def test_copy_is_deep(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        cp = tv.copy()
        cp.halve()
        assert tv.triplet(1).x == pytest.approx(1.0)

    def test_iteration_yields_sorted_triplets(self):
        tv = TripletVector.initial(0, {5: 0.5, 2: 0.5}, {0: 1.0})
        ids = [t.node for t in tv]
        assert ids == sorted(ids)

    def test_estimates_matrix_matches_per_node_arrays(self):
        vectors = [
            TripletVector.initial(0, {1: 0.7, 2: 0.3}, {0: 0.5}),
            TripletVector.initial(1, {0: 1.0}, {1: 0.25}),
            TripletVector.initial(2, {}, {2: 1.0}),
        ]
        n = 4
        mat = TripletVector.estimates_matrix(vectors, n)
        assert mat.shape == (3, n)
        for row, tv in zip(mat, vectors):
            np.testing.assert_array_equal(row, tv.estimates_array(n))

    def test_estimates_matrix_inf_where_x_without_w(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 0.4})
        mat = TripletVector.estimates_matrix([tv], 3)
        assert mat[0, 1] == math.inf  # x > 0, w == 0
        assert math.isnan(mat[0, 2])  # no mass at all


class TestCaching:
    """known_ids / payload_size are cached and invalidated on merge."""

    def test_known_ids_cached_until_merge(self):
        tv = TripletVector.initial(0, {1: 0.5, 3: 0.5}, {0: 1.0})
        first = tv.known_ids()
        assert tv.known_ids() is first  # cache hit, no rebuild
        tv.halve()  # scaling cannot change the known set
        assert tv.known_ids() is first
        other = TripletVector.initial(7, {2: 1.0}, {7: 0.5})
        tv.merge(other)
        rebuilt = tv.known_ids()
        assert rebuilt is not first
        assert set(rebuilt) == {0, 1, 2, 3, 7}

    def test_payload_size_tracks_merges(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        assert tv.payload_size() == 2
        tv.merge(TripletVector.initial(4, {}, {4: 1.0}))
        assert tv.payload_size() == 3
        assert len(tv) == 3

    def test_payload_size_without_materializing_ids(self):
        tv = TripletVector.initial(0, {1: 1.0, 2: 1.0}, {0: 1.0})
        assert tv.payload_size() == 3
        assert tv._known is None  # count alone never builds the tuple

    def test_copy_carries_caches(self):
        tv = TripletVector.initial(0, {1: 1.0}, {0: 1.0})
        ids = tv.known_ids()
        cp = tv.copy()
        assert cp.known_ids() == ids
        cp.merge(TripletVector.initial(3, {}, {3: 1.0}))
        # the copy's invalidation must not leak back into the original
        assert tv.known_ids() is ids
        assert cp.payload_size() == 3
