"""Transport semantics: delivery, loss, link failure, accounting."""

import pytest

from repro.errors import ValidationError
from repro.network.transport import LinkFailureModel, Transport
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    transport = Transport(sim, latency=1.0, loss_rate=0.0, rng=0)
    return sim, transport


class TestDelivery:
    def test_message_arrives_with_payload(self, net):
        sim, tr = net
        got = []
        tr.register(1, lambda m: got.append((m.src, m.payload, sim.now)))
        assert tr.send(0, 1, "hello") is True
        sim.run()
        assert len(got) == 1
        src, payload, when = got[0]
        assert (src, payload) == (0, "hello")
        assert 0.5 <= when <= 1.5  # jittered latency

    def test_zero_latency_delivers_same_time(self):
        sim = Simulator()
        tr = Transport(sim, latency=0.0, rng=0)
        got = []
        tr.register(1, lambda m: got.append(sim.now))
        tr.send(0, 1, "x")
        sim.run()
        assert got == [0.0]

    def test_self_send_rejected(self, net):
        _sim, tr = net
        with pytest.raises(ValidationError):
            tr.send(2, 2, "loop")

    def test_unregistered_destination_drops(self, net):
        sim, tr = net
        tr.send(0, 9, "void")
        sim.run()
        assert tr.dropped_unregistered == 1
        assert tr.delivered == 0

    def test_unregister_mid_flight_drops(self, net):
        sim, tr = net
        tr.register(1, lambda m: None)
        tr.send(0, 1, "x")
        tr.unregister(1)
        sim.run()
        assert tr.dropped_unregistered == 1

    def test_byte_accounting(self, net):
        _sim, tr = net
        tr.register(1, lambda m: None)
        tr.send(0, 1, "x", size=128)
        tr.send(0, 1, "y", size=64)
        assert tr.bytes_sent == 192


class TestLoss:
    def test_loss_rate_one_drops_everything(self):
        sim = Simulator()
        tr = Transport(sim, latency=1.0, loss_rate=1.0, rng=0)
        tr.register(1, lambda m: None)
        assert tr.send(0, 1, "x") is False
        sim.run()
        assert tr.delivered == 0
        assert tr.dropped_loss == 1

    def test_loss_rate_statistics(self):
        sim = Simulator()
        tr = Transport(sim, latency=0.0, loss_rate=0.3, rng=1)
        tr.register(1, lambda m: None)
        n = 5000
        for _ in range(n):
            tr.send(0, 1, "x")
        sim.run()
        assert tr.dropped_loss / n == pytest.approx(0.3, abs=0.03)
        assert tr.delivered + tr.dropped_loss == n

    def test_invalid_loss_rate(self):
        with pytest.raises(ValidationError):
            Transport(Simulator(), loss_rate=1.5)


class TestLinkFailures:
    def test_failed_link_drops_both_directions(self, net):
        sim, tr = net
        tr.register(0, lambda m: None)
        tr.register(1, lambda m: None)
        tr.fail_link(0, 1)
        assert tr.send(0, 1, "a") is False
        assert tr.send(1, 0, "b") is False
        assert tr.dropped_link == 2

    def test_other_links_unaffected(self, net):
        sim, tr = net
        got = []
        tr.register(2, lambda m: got.append(m))
        tr.fail_link(0, 1)
        tr.send(0, 2, "ok")
        sim.run()
        assert len(got) == 1

    def test_link_heals_after_duration(self, net):
        sim, tr = net
        got = []
        tr.register(1, lambda m: got.append(m))
        tr.fail_link(0, 1, duration=5.0)
        tr.send(0, 1, "early")  # dropped
        sim.run(until=6.0)
        tr.send(0, 1, "late")  # delivered
        sim.run()
        assert [m.payload for m in got] == ["late"]

    def test_model_bookkeeping(self):
        model = LinkFailureModel()
        model.fail(2, 1)
        assert model.is_down(1, 2)
        assert model.down_count == 1
        model.heal(1, 2)
        assert not model.is_down(2, 1)
        assert model.failures_injected == 1
