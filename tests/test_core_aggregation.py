"""Exact aggregation: fixed points, power-node mixing, bounds."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedEigenvector
from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.errors import ConvergenceError


class TestAlphaZero:
    def test_converges_to_principal_eigenvector(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0, delta=1e-8)
        res = exact_global_reputation(random_S, cfg)
        oracle = CentralizedEigenvector(random_S).compute()
        assert res.converged
        assert np.allclose(res.vector, oracle, atol=1e-5)

    def test_vector_is_probability_distribution(self, random_S):
        res = exact_global_reputation(
            random_S, GossipTrustConfig(n=random_S.n, alpha=0.0)
        )
        assert res.vector.sum() == pytest.approx(1.0)
        assert np.all(res.vector >= -1e-15)


class TestAlphaMixing:
    def test_power_nodes_fixed_during_run_reported_for_next(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15)
        first = exact_global_reputation(random_S, cfg)
        assert len(first.power_nodes) == cfg.max_power_nodes
        # The reported set is the top of the converged vector.
        expected = set(np.argsort(-first.vector)[: cfg.max_power_nodes].tolist())
        assert set(first.power_nodes) <= expected | set(first.power_nodes)

    def test_carrying_power_nodes_shifts_mass_toward_them(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.3)
        plain = exact_global_reputation(random_S, cfg.with_updates(alpha=0.0))
        power = frozenset({0, 1})
        mixed = exact_global_reputation(random_S, cfg, power_nodes=power)
        share_plain = plain.vector[[0, 1]].sum()
        share_mixed = mixed.vector[[0, 1]].sum()
        assert share_mixed > share_plain

    def test_uniform_mixing_when_no_power_nodes(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.15)
        res = exact_global_reputation(random_S, cfg, power_nodes=frozenset())
        # Fixed point of (1-a) S^T v + a/n; verify residual directly.
        v = res.vector
        expected = 0.85 * random_S.aggregate(v) + 0.15 / random_S.n
        assert np.allclose(v, expected, atol=1e-3)


class TestControl:
    def test_trajectory_recording(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0)
        res = exact_global_reputation(random_S, cfg, record_trajectory=True)
        assert len(res.trajectory) == res.cycles
        assert np.array_equal(res.trajectory[-1], res.vector)

    def test_tighter_delta_needs_more_cycles(self, random_S):
        loose = exact_global_reputation(
            random_S, GossipTrustConfig(n=random_S.n, delta=1e-2)
        )
        tight = exact_global_reputation(
            random_S, GossipTrustConfig(n=random_S.n, delta=1e-8)
        )
        assert tight.cycles > loose.cycles

    def test_budget_raises_or_soft_returns(self, random_S):
        cfg = GossipTrustConfig(n=random_S.n, delta=1e-12, max_cycles=2)
        with pytest.raises(ConvergenceError):
            exact_global_reputation(random_S, cfg)
        res = exact_global_reputation(random_S, cfg, raise_on_budget=False)
        assert not res.converged
        assert res.cycles == 2

    def test_config_n_mismatch_is_reconciled(self, random_S):
        cfg = GossipTrustConfig(n=999)
        res = exact_global_reputation(random_S, cfg)
        assert res.vector.shape == (random_S.n,)

    def test_accepts_dense_input(self, random_S):
        res = exact_global_reputation(
            random_S.dense(), GossipTrustConfig(n=random_S.n)
        )
        assert res.converged
