"""Discrete-event kernel: ordering, time semantics, scheduling."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout


class TestScheduling:
    def test_call_in_fires_at_right_time(self):
        sim = Simulator()
        times = []
        sim.call_in(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        out = []
        sim.call_at(3.0, out.append, "x")
        sim.run()
        assert out == ["x"]
        assert sim.now == 3.0

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.call_at(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_in(-1.0, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.call_in(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestRun:
    def test_run_until_is_inclusive_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.call_at(2.0, fired.append, "at2")
        sim.call_at(5.0, fired.append, "at5")
        sim.run(until=2.0)
        assert fired == ["at2"]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == ["at2", "at5"]
        assert sim.now == 10.0  # clock advances to `until` even when idle

    def test_run_with_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.call_in(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.call_in(4.0, lambda: None)
        assert sim.peek() == 4.0

    def test_not_reentrant(self):
        sim = Simulator()
        err = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                err.append(exc)

        sim.call_in(1.0, reenter)
        sim.run()
        assert len(err) == 1


class TestEvents:
    def test_event_triggers_callbacks_once(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed("v")
        assert got == ["v"]
        with pytest.raises(SimulationError):
            ev.succeed("again")

    def test_callback_on_already_triggered_event_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_timeout_carries_value(self):
        sim = Simulator()
        ev = sim.timeout(2.0, value="payload")
        sim.run()
        assert ev.triggered
        assert ev.value == "payload"

    def test_timeout_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Timeout(sim, -0.5)
