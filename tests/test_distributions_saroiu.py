"""Saroiu file-ownership distribution."""

import numpy as np
import pytest

from repro.distributions.saroiu import SaroiuFileOwnership
from repro.errors import ValidationError


class TestConstruction:
    def test_defaults(self):
        d = SaroiuFileOwnership()
        assert d.free_rider_fraction == 0.25
        assert d.expected_sharer_fraction() == 0.75

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            SaroiuFileOwnership(free_rider_fraction=1.5)
        with pytest.raises(ValidationError):
            SaroiuFileOwnership(shape=0.0)
        with pytest.raises(ValidationError):
            SaroiuFileOwnership(min_files=0)
        with pytest.raises(ValidationError):
            SaroiuFileOwnership(min_files=10, max_files=5)


class TestSampling:
    def test_counts_in_bounds(self, rng):
        d = SaroiuFileOwnership(min_files=1, max_files=1000)
        counts = d.sample_counts(20_000, rng)
        sharing = counts[counts > 0]
        assert sharing.min() >= 1
        assert sharing.max() <= 1000

    def test_free_rider_fraction_realized(self, rng):
        d = SaroiuFileOwnership(free_rider_fraction=0.25)
        counts = d.sample_counts(50_000, rng)
        assert (counts == 0).mean() == pytest.approx(0.25, abs=0.01)

    def test_no_free_riders_when_fraction_zero(self, rng):
        d = SaroiuFileOwnership(free_rider_fraction=0.0)
        counts = d.sample_counts(5000, rng)
        assert (counts == 0).sum() == 0

    def test_skew_median_well_below_mean(self, rng):
        counts = SaroiuFileOwnership().sample_counts(50_000, rng)
        sharing = counts[counts > 0]
        assert np.median(sharing) < sharing.mean() / 2

    def test_deterministic_given_seed(self):
        d = SaroiuFileOwnership()
        assert np.array_equal(d.sample_counts(100, 9), d.sample_counts(100, 9))

    def test_zero_peers(self, rng):
        assert SaroiuFileOwnership().sample_counts(0, rng).size == 0

    def test_rejects_negative_peers(self):
        with pytest.raises(ValidationError):
            SaroiuFileOwnership().sample_counts(-1)
