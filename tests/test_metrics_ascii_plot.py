"""ASCII chart rendering."""

import pytest

from repro.errors import ValidationError
from repro.metrics.ascii_plot import render_chart
from repro.metrics.reporting import Series


def make_series(label="s", pts=((1, 1), (2, 4), (3, 9))):
    s = Series(label=label)
    for x, y in pts:
        s.add(x, y)
    return s


class TestRendering:
    def test_contains_glyphs_and_legend(self):
        out = render_chart([make_series("squares")])
        assert "*" in out
        assert "* squares" in out

    def test_two_series_distinct_glyphs(self):
        out = render_chart([make_series("a"), make_series("b", ((1, 2), (3, 5)))])
        assert "* a" in out
        assert "+ b" in out
        assert "+" in out.splitlines()[3] or any("+" in l for l in out.splitlines())

    def test_axis_labels_present(self):
        out = render_chart(
            [make_series()], x_label="epsilon", y_label="steps", title="demo"
        )
        assert out.splitlines()[0] == "demo"
        assert "epsilon" in out
        assert "steps" in out

    def test_min_max_labels(self):
        out = render_chart([make_series(pts=((1, 10), (5, 90)))])
        assert "10" in out and "90" in out
        assert "1" in out and "5" in out

    def test_extremes_plotted_at_edges(self):
        out = render_chart([make_series(pts=((0, 0), (1, 1)))], width=10, height=5)
        lines = out.splitlines()
        plot = [l.split("|", 1)[1] for l in lines if "|" in l]
        assert plot[0].rstrip().endswith("*")  # max at top-right
        assert plot[-1].lstrip("|").startswith("*")  # min at bottom-left

    def test_log_axes(self):
        s = make_series(pts=((1e-5, 10), (1e-3, 20), (1e-1, 30)))
        out = render_chart([s], log_x=True)
        # On a log axis the three points are evenly spaced; on linear
        # the first two would collapse into one column.
        row_cols = [line.find("*") for line in out.splitlines() if "*" in line]
        assert len(set(row_cols)) == 3

    def test_flat_series_renders(self):
        out = render_chart([make_series(pts=((1, 5), (2, 5)))])
        assert "*" in out


class TestValidation:
    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            render_chart([Series(label="empty")])

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValidationError):
            render_chart([make_series()], width=4, height=2)

    def test_log_axis_requires_positive(self):
        with pytest.raises(ValidationError):
            render_chart([make_series(pts=((0, 1), (1, 2)))], log_x=True)
        with pytest.raises(ValidationError):
            render_chart([make_series(pts=((1, -1), (2, 2)))], log_y=True)


class TestExperimentIntegration:
    def test_result_render_with_chart(self):
        from repro.experiments.base import ExperimentResult

        res = ExperimentResult(
            "demo",
            "demo title",
            series=[make_series("curve")],
            chart_hints={"x_label": "n"},
        )
        plain = res.render()
        charted = res.render(chart=True)
        assert "[chart] demo" not in plain
        assert "[chart] demo" in charted

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "structured", "--quick", "--chart"]) == 0
        assert "[chart] structured" in capsys.readouterr().out
