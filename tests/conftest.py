"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trust.matrix import TrustMatrix


@pytest.fixture
def rng():
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_raw():
    """A 4x4 raw (unnormalized) trust matrix with one dangling row."""
    return np.array(
        [
            [0.0, 3.0, 1.0, 0.0],
            [2.0, 0.0, 2.0, 0.0],
            [1.0, 1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 0.0],  # node 3 issued no feedback
        ]
    )


@pytest.fixture
def small_S(small_raw):
    """The normalized TrustMatrix of ``small_raw``."""
    return TrustMatrix.from_dense_raw(small_raw)


@pytest.fixture
def random_S(rng):
    """A dense-ish random 30-node normalized trust matrix."""
    n = 30
    raw = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    np.fill_diagonal(raw, 0.0)
    # Guarantee no dangling rows so tests exercising exact spectra are clean.
    for i in range(n):
        if raw[i].sum() == 0:
            raw[i, (i + 1) % n] = 1.0
    return TrustMatrix.from_dense_raw(raw)
