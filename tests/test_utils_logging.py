"""Run-logging helpers."""

import logging

from repro.utils.logging import configure, get_logger, timed


class TestGetLogger:
    def test_namespaced_under_repro(self):
        log = get_logger("gossip.engine")
        assert log.name == "repro.gossip.engine"

    def test_already_namespaced_passthrough(self):
        log = get_logger("repro.core")
        assert log.name == "repro.core"

    def test_same_name_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestConfigure:
    def test_installs_single_handler(self):
        root = logging.getLogger("repro")
        before = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        configure()
        configure()  # idempotent
        after = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(after) == max(1, len(before))

    def test_sets_level(self):
        configure(level=logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING
        configure(level=logging.INFO)  # restore


class TestTimed:
    def test_logs_duration_at_debug(self, caplog):
        log = get_logger("timed-test")
        with caplog.at_level(logging.DEBUG, logger="repro.timed-test"):
            with timed(log, "unit-of-work"):
                pass
        assert any("unit-of-work took" in r.message for r in caplog.records)

    def test_logs_even_on_exception(self, caplog):
        log = get_logger("timed-test")
        with caplog.at_level(logging.DEBUG, logger="repro.timed-test"):
            try:
                with timed(log, "failing-work"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert any("failing-work took" in r.message for r in caplog.records)
