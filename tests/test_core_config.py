"""GossipTrustConfig validation and derived values."""

import pytest

from repro.core.config import GossipTrustConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_table2_defaults(self):
        cfg = GossipTrustConfig()
        assert cfg.n == 1000
        assert cfg.alpha == 0.15
        assert cfg.power_node_fraction == 0.01
        assert cfg.delta == 1e-3
        assert cfg.epsilon == 1e-4

    def test_max_power_nodes_is_one_percent(self):
        assert GossipTrustConfig(n=1000).max_power_nodes == 10

    def test_max_power_nodes_at_least_one_when_alpha_positive(self):
        assert GossipTrustConfig(n=50, alpha=0.15).max_power_nodes == 1

    def test_max_power_nodes_zero_when_alpha_zero(self):
        assert GossipTrustConfig(n=50, alpha=0.0).max_power_nodes == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1},
            {"alpha": 1.0},
            {"alpha": -0.1},
            {"power_node_fraction": 1.5},
            {"delta": 0.0},
            {"epsilon": -1e-4},
            {"max_cycles": 0},
            {"max_gossip_steps": 0},
            {"engine_mode": "quantum"},
            {"probe_columns": 0},
            {"check_every": 0},
            {"densify_threshold": -0.1},
            {"densify_threshold": 1.1},
            {"kernel": "warp"},
            {"dtype": "float16"},
            {"kernel": "legacy", "dtype": "float32"},
            {"block_rows": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            GossipTrustConfig(**kwargs)

    def test_kernel_and_dtype_defaults(self):
        cfg = GossipTrustConfig()
        assert cfg.kernel == "fast"
        assert cfg.dtype == "float64"
        assert cfg.block_rows == 0

    def test_sparse_float32_accepted(self):
        cfg = GossipTrustConfig(kernel="sparse", dtype="float32", block_rows=128)
        assert cfg.kernel == "sparse"
        assert cfg.block_rows == 128


class TestUpdates:
    def test_with_updates_returns_new_validated_config(self):
        cfg = GossipTrustConfig(n=100)
        cfg2 = cfg.with_updates(alpha=0.3)
        assert cfg2.alpha == 0.3
        assert cfg.alpha == 0.15  # original untouched

    def test_with_updates_revalidates(self):
        with pytest.raises(ConfigurationError):
            GossipTrustConfig().with_updates(delta=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            GossipTrustConfig().n = 5
