"""Buffer backends and pooled CSR storage (:mod:`repro.gossip.memory`).

The sparse kernel's whole-cycle CSR state lives in :class:`CsrPool`
instances whose arrays come from a :class:`BufferBackend` — ordinary
heap pages, POSIX shared-memory segments, or memory-mapped spill files.
The backends must be interchangeable: same array semantics, same pool
behavior, differing only in where the pages physically live and how
they are released.
"""

import os

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ConfigurationError, ValidationError
from repro.gossip.memory import (
    BACKEND_NAMES,
    CsrPool,
    MemmapBuffers,
    PrivateBuffers,
    SharedMemoryBuffers,
    make_backend,
    max_pool_columns,
    min_shards_for,
)


class TestMakeBackend:
    def test_names_resolve(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name)
            assert backend.name == name
            backend.close()

    def test_none_is_private(self):
        assert isinstance(make_backend(None), PrivateBuffers)

    def test_instance_passes_through(self):
        backend = PrivateBuffers()
        assert make_backend(backend) is backend

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("heap")


class TestBackendSemantics:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_empty_roundtrip(self, name):
        backend = make_backend(name)
        try:
            arr = backend.empty((4, 3), np.float64, "x")
            arr[:] = np.arange(12, dtype=np.float64).reshape(4, 3)
            np.testing.assert_array_equal(
                arr, np.arange(12, dtype=np.float64).reshape(4, 3)
            )
            scalar_shape = backend.empty(5, np.int32, "i")
            assert scalar_shape.shape == (5,)
            assert scalar_shape.dtype == np.int32
        finally:
            if name == "shared":
                del arr, scalar_shape  # views pin the segments
            backend.close()

    def test_shared_manifest_and_attach(self):
        backend = SharedMemoryBuffers()
        arr = backend.empty((8,), np.float64, "weights")
        arr[:] = np.arange(8.0)
        seg_name, shape, dtype = backend.manifest()["weights"]
        view, keeper = SharedMemoryBuffers.attach(seg_name, shape, dtype)
        try:
            np.testing.assert_array_equal(view, np.arange(8.0))
            view[0] = 41.0  # same physical pages
            assert arr[0] == 41.0
        finally:
            del view
            keeper.close()
            del arr
            backend.close()

    def test_memmap_spills_under_directory(self, tmp_path):
        backend = MemmapBuffers(directory=str(tmp_path))
        arr = backend.empty((16,), np.float32, "tile")
        arr[:] = 1.0
        files = list(tmp_path.iterdir())
        assert files and all(f.suffix == ".mm" for f in files)
        backend.close()
        assert not list(tmp_path.iterdir())

    def test_memmap_default_tempdir_cleaned(self):
        backend = MemmapBuffers()
        directory = backend.directory
        backend.empty((4,), np.float64)
        assert os.path.isdir(directory)
        backend.close()
        assert not os.path.isdir(directory)


def _small_csr(n=6, cols=4):
    rng = np.random.default_rng(0)
    dense = rng.random((n, cols))
    dense[dense < 0.5] = 0.0
    return sparse.csr_matrix(dense)


class TestCsrPool:
    def test_load_roundtrip(self):
        mat = _small_csr()
        pool = CsrPool(6, 4, capacity=4, dtype=np.float64, backend=PrivateBuffers())
        pool.load(mat)
        assert pool.nnz == mat.nnz
        assert (pool.tocsr() != mat).nnz == 0

    def test_ensure_grows_geometrically_and_clamps(self):
        pool = CsrPool(6, 4, capacity=2, dtype=np.float64, backend=PrivateBuffers())
        assert pool.capacity == 2
        pool.ensure(3)
        assert pool.capacity == 4  # doubled, not exact-fit
        pool.ensure(10_000)
        assert pool.capacity == pool.full_capacity == 24  # clamped to n*cols

    def test_ensure_noop_when_sufficient(self):
        pool = CsrPool(6, 4, capacity=8, dtype=np.float64, backend=PrivateBuffers())
        indices_before = pool.indices
        pool.ensure(5)
        assert pool.indices is indices_before

    def test_sum_and_min_track_live_prefix(self):
        mat = _small_csr()
        pool = CsrPool(6, 4, capacity=24, dtype=np.float64, backend=PrivateBuffers())
        pool.load(mat)
        assert pool.sum() == pytest.approx(mat.sum())
        assert pool.min() == pytest.approx(mat.data.min())

    def test_empty_pool_min_is_zero(self):
        pool = CsrPool(6, 4, capacity=4, dtype=np.float64, backend=PrivateBuffers())
        assert pool.min() == 0.0

    def test_shape_mismatch_rejected(self):
        pool = CsrPool(6, 4, capacity=4, dtype=np.float64, backend=PrivateBuffers())
        with pytest.raises(ValidationError):
            pool.load(_small_csr(5, 4))

    def test_int32_range_guard(self):
        with pytest.raises(ValidationError):
            CsrPool(
                2**17, 2**15, capacity=4, dtype=np.float64,
                backend=PrivateBuffers(),
            )

    def test_int32_range_guard_is_actionable(self):
        """The guard message says how many columns *would* fit and the
        shard count that makes the requested shape legal."""
        n, cols = 2**17, 2**15
        with pytest.raises(ValidationError) as exc:
            CsrPool(n, cols, capacity=4, dtype=np.float64, backend=PrivateBuffers())
        msg = str(exc.value)
        assert str(max_pool_columns(n)) in msg  # max columns at this n
        assert f"shards={min_shards_for(n, cols)}" in msg  # the fix

    def test_max_pool_columns_bounds(self):
        n = 10**6
        fit = max_pool_columns(n)
        # The reported bound is sharp: fit columns pass, fit+1 fails.
        assert n * fit < np.iinfo(np.int32).max
        assert n * (fit + 1) >= np.iinfo(np.int32).max
        CsrPool(n, fit, capacity=4, dtype=np.float64, backend=PrivateBuffers())
        with pytest.raises(ValidationError):
            CsrPool(n, fit + 1, capacity=4, dtype=np.float64, backend=PrivateBuffers())

    def test_min_shards_for_restores_legality(self):
        n, cols = 2**17, 2**15
        k = min_shards_for(n, cols)
        assert k > 1
        # Sharding cols over k pools brings every shard under the guard
        # (shard widths differ by at most 1 under contiguous splitting).
        widest = -(-cols // k)
        assert n * widest < np.iinfo(np.int32).max
        # One shard fewer would not fit.
        assert n * -(-cols // (k - 1)) >= np.iinfo(np.int32).max

    def test_float32_pool(self):
        mat = _small_csr()
        pool = CsrPool(6, 4, capacity=24, dtype=np.float32, backend=PrivateBuffers())
        pool.load(mat)
        assert pool.data.dtype == np.float32
        np.testing.assert_allclose(
            pool.tocsr().toarray(), mat.toarray(), rtol=1e-6
        )
