"""Chord ring: placement, ownership, routing, membership changes."""

import pytest

from repro.errors import NetworkError, UnknownNodeError, ValidationError
from repro.network.dht import ChordRing


@pytest.fixture
def ring():
    return ChordRing(range(32), bits=16)


class TestConstruction:
    def test_all_nodes_placed(self, ring):
        assert len(ring) == 32
        assert set(ring.nodes) == set(range(32))

    def test_ring_ids_unique(self, ring):
        rids = [ring.ring_id(i) for i in range(32)]
        assert len(set(rids)) == 32

    def test_collisions_resolved_at_tiny_bits(self):
        # 3-bit ring has 8 positions; 8 nodes force salting.
        ring = ChordRing(range(8), bits=3)
        assert len(ring) == 8

    def test_rejects_empty_or_bad_bits(self):
        with pytest.raises(ValidationError):
            ChordRing([], bits=16)
        with pytest.raises(ValidationError):
            ChordRing([0], bits=2)

    def test_rejects_duplicate_node(self):
        with pytest.raises(NetworkError):
            ChordRing([1, 1])


class TestOwnership:
    def test_owner_is_successor_of_key(self, ring):
        key = "some-file"
        owner = ring.owner(key)
        kid = ring.key_id(key)
        # No other node lies in (kid, owner_rid) clockwise.
        orid = ring.ring_id(owner)
        for node in ring.nodes:
            rid = ring.ring_id(node)
            if rid == orid:
                continue
            in_between = (
                kid <= rid < orid
                if kid <= orid
                else (rid >= kid or rid < orid)
            )
            assert not in_between

    def test_owner_deterministic(self, ring):
        assert ring.owner("k") == ring.owner("k")

    def test_keys_spread_over_nodes(self, ring):
        owners = {ring.owner(("key", i)) for i in range(500)}
        assert len(owners) > 16  # at least half the ring gets keys


class TestLookup:
    def test_lookup_finds_owner_from_any_start(self, ring):
        key = ("score", 17)
        expected = ring.owner(key)
        for start in range(0, 32, 5):
            res = ring.lookup(start, key)
            assert res.owner == expected
            assert res.path[0] == start
            assert res.path[-1] == expected

    def test_lookup_hops_logarithmic(self):
        ring = ChordRing(range(256), bits=32)
        total = 0
        for i in range(100):
            total += ring.lookup(i % 256, ("k", i)).hops
        mean_hops = total / 100
        assert mean_hops <= 2 * 8  # ~log2(256) with slack

    def test_lookup_from_owner_is_zero_hops_or_short(self, ring):
        key = "x"
        owner = ring.owner(key)
        assert ring.lookup(owner, key).hops == 0

    def test_lookup_unknown_start(self, ring):
        with pytest.raises(UnknownNodeError):
            ring.lookup(99, "k")

    def test_mean_hops_counter(self, ring):
        assert ring.mean_hops != ring.mean_hops  # NaN before lookups
        ring.lookup(0, "a")
        assert ring.mean_hops >= 0


class TestMembership:
    def test_join_changes_ownership_consistently(self, ring):
        keys = [("f", i) for i in range(200)]
        before = {k: ring.owner(k) for k in keys}
        ring.join(100)
        moved = [k for k in keys if ring.owner(k) != before[k]]
        # Only keys now owned by the new node move.
        assert all(ring.owner(k) == 100 for k in moved)

    def test_leave_redistributes_keys(self, ring):
        key = "sticky"
        victim = ring.owner(key)
        ring.leave(victim)
        assert ring.owner(key) != victim
        assert victim not in ring.nodes

    def test_leave_unknown_node(self, ring):
        with pytest.raises(UnknownNodeError):
            ring.leave(999)

    def test_cannot_empty_ring(self):
        ring = ChordRing([5])
        with pytest.raises(NetworkError):
            ring.leave(5)

    def test_lookup_correct_after_churn(self, ring):
        ring.leave(3)
        ring.leave(7)
        ring.join(100)
        for start in ring.nodes[:5]:
            res = ring.lookup(start, "post-churn")
            assert res.owner == ring.owner("post-churn")
