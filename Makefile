# GossipTrust reproduction — common workflows.

PYTHON ?= python

.PHONY: install test lint analyze typecheck ci bench bench-smoke bench-large bench-xlarge service-smoke chaos-smoke sweep examples experiments docs clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Lint with ruff when available; skip (successfully) when it is not
# installed so offline environments can still run `make ci`.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Project-specific invariant lint (GT001-GT009, including the
# interprocedural flow rules); stdlib-only, so it always runs — see
# tools/analyze.py and src/repro/analysis/.
analyze:
	PYTHONPATH=src $(PYTHON) tools/analyze.py src tests examples tools benchmarks

# Strict typing gate over the algorithmic core (see [tool.mypy] in
# pyproject.toml).  Gated like lint: skip cleanly when mypy is missing.
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; \
	fi

# What CI runs: the tier-1 suite plus the three static gates.
ci: test analyze lint typecheck

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick engine-comparison sweep (what CI's bench-smoke job runs).  Writes
# to a scratch path so the tracked full-mode BENCH_engines.json — regenerate
# that one with `PYTHONPATH=src python tools/bench_runner.py` — stays intact.
bench-smoke:
	PYTHONPATH=src $(PYTHON) tools/bench_runner.py --quick --output BENCH_engines.quick.json

# Large-n sparse-kernel tier only (n=10^4 in quick mode): one converged
# probe cycle per dtype with per-point peak-RSS metering.  Exits
# non-zero when a wall-time or RSS budget is blown, so it doubles as a
# memory-regression gate (full tier incl. n=10^5: drop --quick).
bench-large:
	PYTHONPATH=src $(PYTHON) tools/bench_runner.py --quick --large-only --output BENCH_large.quick.json

# Opt-in n=10^6 point on top of the full large-n tier: streaming matrix
# construction (~2*10^7 edges) plus one converged sharded sparse-kernel
# probe cycle per dtype, gated on 3 GiB (float64) / 2 GiB (float32)
# peak-RSS budgets.  Minutes of single-core SpGEMM — never part of
# `make ci`; run it to refresh the recorded trajectory point.
bench-xlarge:
	PYTHONPATH=src $(PYTHON) tools/bench_runner.py --large-only --xlarge --output BENCH_xlarge.json

# Long-lived service soak: ingest -> incremental aggregation -> Bloom
# serving, with the runtime invariant sanitizer armed so every
# row-stochasticity and mass check fires during the soak (see
# src/repro/service/ and the service-smoke CI job).
service-smoke:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro.cli serve-sim \
		--n 200 --epochs 3 --events 40 --queries 300 --seed 0
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/test_service.py -q

# Chaos soak: the churn-resilience sweep (scripted crash bursts) across
# both DES engines and all four partner strategies with every runtime
# invariant check armed, then the robustness test files under the same
# posture (see src/repro/network/faultplan.py and gossip/partnering.py).
chaos-smoke:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro.cli run resilience \
		--quick --set n=48 --set strategies=global,neighbors,hyparview,brahms \
		--set engines=message,async
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/test_gossip_partnering.py tests/test_network_reliability.py \
		tests/test_network_faultplan.py tests/test_experiments_resilience.py

# Demo of the parallel sweep runner: a quick experiment fanned over 2
# worker processes (results are identical to --workers 1, only faster
# on multi-core boxes; see src/repro/experiments/runner.py).
sweep:
	PYTHONPATH=src $(PYTHON) -m repro.cli run fig3 --quick --workers 2

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# Regenerate every paper table/figure at smoke scale (fast sanity pass).
experiments:
	$(PYTHON) -m repro.cli all --quick

docs:
	$(PYTHON) tools/gen_api_doc.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
