#!/usr/bin/env python
"""Pinned engine benchmark sweep -> ``BENCH_engines.json`` at the repo root.

Runs one aggregation cycle per (engine, n) on a fixed synthetic matrix
and seed, records median wall time, step count, and peak memory, and
writes the machine-readable trajectory file future PRs diff against for
no-regression checks.  Two pinned modes:

* default — n in {250, 500, 1000}, 3 repeats per cell;
* ``--quick`` — same n sweep, 1 repeat (CI's bench-smoke job).

The sync engine is measured twice — fast kernel at its defaults and the
legacy reference kernel at ``check_every=1`` (the pre-kernel per-step
cadence) — so the recorded trajectory carries its own baseline and the
speedup is visible in the artifact itself.  The message engine runs at
n <= 500 (it simulates every point-to-point message; larger sweeps
belong to the pytest-benchmark suite).

Since schema 2 an ``end_to_end`` section extends the per-cycle cells:

* full multi-cycle ``GossipTrust.run`` wall time with the persistent
  engine workspace on and off (the ``workspace_reuse_speedup`` ratio);
* sweep-runner throughput (points/sec) at workers in {1, 2, 4}
  ({1, 2} in quick mode) over Fig. 3-style points.

Usage::

    PYTHONPATH=src python tools/bench_runner.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import GossipTrustConfig  # noqa: E402
from repro.core.gossiptrust import GossipTrust  # noqa: E402
from repro.experiments.fig3_gossip_steps import _fig3_point  # noqa: E402
from repro.experiments.runner import SweepPoint, run_sweep  # noqa: E402
from repro.experiments.synthetic import synthetic_trust_matrix  # noqa: E402
from repro.gossip.factory import make_engine  # noqa: E402
from repro.utils.proc import peak_rss_kib  # noqa: E402
from repro.utils.rng import RngStreams  # noqa: E402

SEED = 0
EPSILON = 1e-4
N_SWEEP = (250, 500, 1000)
#: message-engine cap: it simulates every message, so it sweeps small n
MESSAGE_N_MAX = 500
#: end-to-end GossipTrust.run problem size (quick mode shrinks it)
E2E_N = 1000
E2E_N_QUICK = 250
#: sweep-throughput worker fan-out (quick mode trims to {1, 2})
SWEEP_WORKERS = (1, 2, 4)
SWEEP_WORKERS_QUICK = (1, 2)
#: Fig. 3-style sweep-point parameters for the throughput benchmark
SWEEP_POINT_N = 300
SWEEP_POINT_N_QUICK = 150
SWEEP_POINTS = 8


def bench_cell(engine: str, n: int, repeats: int, **overrides) -> dict:
    """Median-of-``repeats`` wall time for one engine at one n."""
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    v = np.full(n, 1.0 / n)
    times = []
    steps = converged = None
    for _ in range(repeats):
        eng = make_engine(
            engine, n=n, rng=RngStreams(SEED), epsilon=EPSILON, **overrides
        )
        t0 = time.perf_counter()
        result = eng.run_cycle(S, v)
        times.append(time.perf_counter() - t0)
        steps, converged = int(result.steps), bool(result.converged)
    return {
        "engine": engine,
        "n": n,
        "wall_time_s": round(sorted(times)[len(times) // 2], 6),
        "wall_times_s": [round(t, 6) for t in times],
        "steps": steps,
        "converged": converged,
        "peak_rss_kib": peak_rss_kib(),
        "options": overrides,
    }


def bench_full_runs(n: int, repeats: int) -> list:
    """Median full multi-cycle ``GossipTrust.run`` wall time, workspace
    reuse on vs off.

    The two variants' repeats are interleaved (reuse, fresh, reuse,
    fresh, ...) so machine drift during the bench biases neither side.
    """
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    cfg = GossipTrustConfig(n=n, epsilon=EPSILON, seed=SEED)
    cells = {}
    for reuse in (True, False):
        cells[reuse] = {
            "kind": "gossiptrust_run",
            "n": n,
            "reuse_workspace": reuse,
            "wall_times_s": [],
        }

    def once(reuse: bool) -> float:
        eng = make_engine("sync", cfg, rng=RngStreams(SEED), reuse_workspace=reuse)
        system = GossipTrust(S, cfg, engine=eng)
        t0 = time.perf_counter()
        result = system.run(raise_on_budget=False, compute_reference=False)
        elapsed = time.perf_counter() - t0
        cells[reuse]["cycles"] = int(result.cycles)
        cells[reuse]["total_gossip_steps"] = int(result.total_gossip_steps)
        return elapsed

    once(True)  # warm caches outside the measured repeats
    for _ in range(repeats):
        for reuse in (True, False):
            cells[reuse]["wall_times_s"].append(round(once(reuse), 6))
    for cell in cells.values():
        times = cell["wall_times_s"]
        cell["wall_time_s"] = sorted(times)[len(times) // 2]
        cell["peak_rss_kib"] = peak_rss_kib()
    return [cells[True], cells[False]]


def bench_sweeps(point_n: int, workers_list) -> list:
    """Sweep-runner throughput over Fig. 3-style points per worker count."""
    points = [
        SweepPoint(
            fn=_fig3_point,
            kwargs={
                "n": point_n,
                "epsilon": 1e-3,
                "cycles_per_point": 1,
                "engine": "sync",
            },
            seed=seed,
            label=f"bench/n={point_n}/s{seed}",
        )
        for seed in range(SWEEP_POINTS)
    ]
    rows = []
    for workers in workers_list:
        report = run_sweep(points, workers=workers)
        rows.append(
            {
                "kind": "sweep",
                "point_n": point_n,
                "points": len(points),
                "workers": workers,
                "wall_time_s": round(report.wall_time, 6),
                "points_per_second": round(report.points_per_second, 3),
                "peak_rss_kib": report.max_peak_rss_kib,
            }
        )
    return rows


def run_end_to_end(quick: bool) -> dict:
    """The schema-2 section: full-run reuse ratio and sweep throughput.

    The reuse-vs-fresh gap is a few percent of a multi-second run, so
    the full mode uses more repeats than the per-cycle grid to keep the
    recorded ratio out of the noise.
    """
    repeats = 1 if quick else 7
    n = E2E_N_QUICK if quick else E2E_N
    runs = bench_full_runs(n, repeats)
    for cell in runs:
        reuse = cell["reuse_workspace"]
        print(
            f"{'gossiptrust.run reuse_workspace=' + str(reuse):55s} "
            f"n={n:5d}  {cell['wall_time_s']:8.3f}s  cycles={cell['cycles']}"
        )
    speedup = runs[1]["wall_time_s"] / max(runs[0]["wall_time_s"], 1e-12)
    sweeps = bench_sweeps(
        SWEEP_POINT_N_QUICK if quick else SWEEP_POINT_N,
        SWEEP_WORKERS_QUICK if quick else SWEEP_WORKERS,
    )
    for row in sweeps:
        print(
            f"{'sweep workers=' + str(row['workers']):55s} "
            f"n={row['point_n']:5d}  {row['wall_time_s']:8.3f}s  "
            f"{row['points_per_second']:.2f} pts/s"
        )
    return {
        "runs": runs,
        "workspace_reuse_speedup": round(speedup, 4),
        "sweeps": sweeps,
        "cpu_count": os.cpu_count(),
    }


def run(quick: bool) -> dict:
    repeats = 1 if quick else 3
    entries = []
    for n in N_SWEEP:
        cells = [
            ("sync", {"mode": "full", "kernel": "fast"}),
            ("sync", {"mode": "full", "kernel": "legacy", "check_every": 1}),
            ("sync", {"mode": "probe", "kernel": "fast"}),
        ]
        if n <= MESSAGE_N_MAX:
            cells.append(("message", {"max_rounds": 400}))
        for engine, overrides in cells:
            cell = bench_cell(engine, n, repeats, **overrides)
            label = "+".join(
                [engine, *(f"{k}={v}" for k, v in sorted(overrides.items()))]
            )
            print(
                f"{label:55s} n={n:5d}  {cell['wall_time_s']:8.3f}s  "
                f"steps={cell['steps']}"
            )
            entries.append(cell)
    return {
        "schema": 2,
        "quick": quick,
        "seed": SEED,
        "epsilon": EPSILON,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": entries,
        "end_to_end": run_end_to_end(quick),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="1 repeat per cell (CI smoke mode)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engines.json",
        help="output JSON path (default: BENCH_engines.json at the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
