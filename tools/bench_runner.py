#!/usr/bin/env python
"""Pinned engine benchmark sweep -> ``BENCH_engines.json`` at the repo root.

Runs one aggregation cycle per (engine, n) on a fixed synthetic matrix
and seed, records median wall time, step count, and peak memory, and
writes the machine-readable trajectory file future PRs diff against for
no-regression checks.  Two pinned modes:

* default — n in {250, 500, 1000}, 3 repeats per cell;
* ``--quick`` — same n sweep, 1 repeat (CI's bench-smoke job).

The sync engine is measured twice — fast kernel at its defaults and the
legacy reference kernel at ``check_every=1`` (the pre-kernel per-step
cadence) — so the recorded trajectory carries its own baseline and the
speedup is visible in the artifact itself.  The message engine runs at
n <= 500 (it simulates every point-to-point message; larger sweeps
belong to the pytest-benchmark suite).

Since schema 2 an ``end_to_end`` section extends the per-cycle cells:

* full multi-cycle ``GossipTrust.run`` wall time with the persistent
  engine workspace on and off (the ``workspace_reuse_speedup`` ratio);
* sweep-runner throughput (points/sec) at workers in {1, 2, 4}
  ({1, 2} in quick mode) over Fig. 3-style points.

Since schema 3 a ``service`` section measures the long-lived
:class:`~repro.service.ReputationService` closed loop via
:func:`~repro.service.simulate_service`: sustained ingest events/sec,
Bloom-store query throughput, served-score staleness, and the
incremental-vs-scratch comparison — mean warm-started epoch against a
cold from-scratch ``GossipTrust.run`` on the identical matrix and
power-node set (``wall_speedup``/``step_speedup``, plus the vector
parity error between the two).  Schema 3 also stamps caller-supplied
provenance: ``--label`` and ``--commit`` are recorded verbatim (both
passed in, never read from a clock or ``git`` here, so runs stay
deterministic and offline-friendly).

Since schema 4:

* every entry's ``peak_rss_kib`` is *per-entry* (a
  :class:`~repro.utils.proc.PeakRssMeter` resets the kernel RSS
  high-water mark around each measurement instead of reporting the
  monotone process-lifetime peak for every cell);
* per-cycle entries and the end-to-end runs carry a ``phases``
  breakdown (``setup``/``oracle``/``alloc``/``kernel``/``estimate``
  seconds) so the artifact explains *where* wall time goes — e.g. how
  much of a cycle the workspace alloc actually costs;
* a ``large_n`` section runs the memory-bounded ``kernel="sparse"``
  probe path at n in {10^4, 10^5} (quick mode: 10^4 only) in both
  float64 and float32, recording wall time and per-point peak RSS
  against explicit per-n budgets (``within_rss_budget`` /
  ``within_wall_budget``) plus the float32-vs-float64 score deviation.
  ``--large-only`` runs just this tier and exits non-zero when a
  budget is blown (the ``make bench-large`` gate).

Since schema 5:

* every ``large_n`` point records the sparse kernel's column-shard
  configuration (``shards``/``shard_workers``) — the standing tiers run
  sharded (``shards=2``) to keep the shard-invariant path on the
  recorded trajectory;
* an opt-in ``--xlarge`` flag extends the tier with the n = 10^6 point
  (``shards=4``, streaming matrix construction, ~2*10^7 edges) against
  explicit budgets — 3 GiB peak RSS for float64, 2 GiB for float32,
  with generous single-core wall ceilings.  ``make bench-xlarge`` is
  the gated entry point (``--large-only --xlarge``); the default and
  ``--quick`` sweeps never pay for it.

Since schema 6 a ``resilience`` section runs the churn-resilience
sweep (``experiments/churn_resilience.py``) at a pinned operating
point: partner strategies under the scripted ``crash`` fault plan with
the engines' mass-restoration guard armed, recording per-cell gossip
error, membership overhead fraction, and permanently-isolated live
nodes (``zero_isolated`` must stay ``true`` — the self-healing
acceptance line).  Quick mode trims the grid to the message engine and
two strategies.

Usage::

    PYTHONPATH=src python tools/bench_runner.py [--quick] [--large-only]
        [--xlarge] [--output PATH] [--label TEXT] [--commit SHA]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import GossipTrustConfig  # noqa: E402
from repro.core.gossiptrust import GossipTrust  # noqa: E402
from repro.experiments.fig3_gossip_steps import _fig3_point  # noqa: E402
from repro.experiments.runner import SweepPoint, run_sweep  # noqa: E402
from repro.experiments.synthetic import synthetic_trust_matrix  # noqa: E402
from repro.gossip.factory import make_engine  # noqa: E402
from repro.service import ServeSimConfig, simulate_service  # noqa: E402
from repro.utils.proc import PeakRssMeter  # noqa: E402
from repro.utils.rng import RngStreams  # noqa: E402

SEED = 0
EPSILON = 1e-4
N_SWEEP = (250, 500, 1000)
#: message-engine cap: it simulates every message, so it sweeps small n
MESSAGE_N_MAX = 500
#: end-to-end GossipTrust.run problem size (quick mode shrinks it)
E2E_N = 1000
E2E_N_QUICK = 250
#: sweep-throughput worker fan-out (quick mode trims to {1, 2})
SWEEP_WORKERS = (1, 2, 4)
SWEEP_WORKERS_QUICK = (1, 2)
#: Fig. 3-style sweep-point parameters for the throughput benchmark
SWEEP_POINT_N = 300
SWEEP_POINT_N_QUICK = 150
SWEEP_POINTS = 8
#: service closed-loop problem size (the acceptance operating point)
SERVICE_N = 1000
SERVICE_N_QUICK = 250
#: measured ingest/query/aggregate epochs in the service section
SERVICE_EPOCHS = 4
SERVICE_EPOCHS_QUICK = 2
#: large-n sparse-kernel tier (quick mode runs the first point only)
LARGE_N_SWEEP = (10_000, 100_000)
#: the opt-in ``--xlarge`` extension point (``make bench-xlarge``)
XLARGE_N = 1_000_000
#: per-n budgets for the large tier: peak RSS (KiB) and wall time (s).
#: The 10^5 RSS budget is a prior acceptance line (2 GiB); the 10^6
#: budgets are per-dtype (3 GiB float64 / 2 GiB float32 — the pools,
#: the dense prev buffer, and the ~2*10^7-edge matrix together).  Wall
#: budgets are ~4x the observed single-core times, loose enough for CI.
LARGE_N_BUDGETS = {
    10_000: {"rss_kib": 1 * 1024 * 1024, "wall_s": 60.0},
    100_000: {"rss_kib": 2 * 1024 * 1024, "wall_s": 300.0},
    XLARGE_N: {
        "rss_kib": 3 * 1024 * 1024,
        "rss_kib_float32": 2 * 1024 * 1024,
        "wall_s": 1800.0,
    },
}
#: sparse-kernel shard configuration per large-n point (schema 5): the
#: standing tiers run 2-way sharded so the recorded trajectory always
#: exercises the shard-invariant path; the 10^6 point splits 4 ways.
LARGE_N_SHARDS = {10_000: 2, 100_000: 2, XLARGE_N: 4}
#: resilience-section operating point (schema 6): strategies under the
#: scripted crash plan, mass-restoration guard armed
RESILIENCE_N = 96
RESILIENCE_N_QUICK = 48
RESILIENCE_STRATEGIES = ("global", "neighbors", "hyparview", "brahms")
RESILIENCE_STRATEGIES_QUICK = ("global", "hyparview")
RESILIENCE_ENGINES = ("message", "async")
RESILIENCE_ENGINES_QUICK = ("message",)


def bench_cell(engine: str, n: int, repeats: int, **overrides) -> dict:
    """Median-of-``repeats`` wall time for one engine at one n."""
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    v = np.full(n, 1.0 / n)
    times = []
    steps = converged = None
    phases = {}
    meter = PeakRssMeter()  # per-entry peak: reset *after* building S
    for _ in range(repeats):
        eng = make_engine(
            engine, n=n, rng=RngStreams(SEED), epsilon=EPSILON, **overrides
        )
        t0 = time.perf_counter()
        result = eng.run_cycle(S, v)
        times.append(time.perf_counter() - t0)
        steps, converged = int(result.steps), bool(result.converged)
        phases = {
            k: round(float(s), 6)
            for k, s in (getattr(result, "phase_times", {}) or {}).items()
        }
    return {
        "engine": engine,
        "n": n,
        "wall_time_s": round(sorted(times)[len(times) // 2], 6),
        "wall_times_s": [round(t, 6) for t in times],
        "steps": steps,
        "converged": converged,
        "peak_rss_kib": meter.read_kib(),
        "peak_rss_per_entry": meter.exact,
        "phases": phases,
        "options": overrides,
    }


def bench_full_runs(n: int, repeats: int) -> list:
    """Median full multi-cycle ``GossipTrust.run`` wall time, workspace
    reuse on vs off.

    The two variants' repeats are interleaved (reuse, fresh, reuse,
    fresh, ...) so machine drift during the bench biases neither side.
    """
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    cfg = GossipTrustConfig(n=n, epsilon=EPSILON, seed=SEED)
    cells = {}
    for reuse in (True, False):
        cells[reuse] = {
            "kind": "gossiptrust_run",
            "n": n,
            "reuse_workspace": reuse,
            "wall_times_s": [],
        }

    def once(reuse: bool) -> float:
        eng = make_engine("sync", cfg, rng=RngStreams(SEED), reuse_workspace=reuse)
        system = GossipTrust(S, cfg, engine=eng)
        meter = PeakRssMeter()
        t0 = time.perf_counter()
        result = system.run(raise_on_budget=False, compute_reference=False)
        elapsed = time.perf_counter() - t0
        cell = cells[reuse]
        cell["cycles"] = int(result.cycles)
        cell["total_gossip_steps"] = int(result.total_gossip_steps)
        cell["peak_rss_kib"] = max(cell.get("peak_rss_kib", 0.0), meter.read_kib())
        # Where the run's wall time went (summed over its cycles) — this
        # is what pins the reuse-vs-fresh gap to the alloc share.
        cell["phases"] = {
            k: round(s, 6) for k, s in result.telemetry.phase_summary().items()
        }
        return elapsed

    once(True)  # warm caches outside the measured repeats
    for _ in range(repeats):
        for reuse in (True, False):
            cells[reuse]["wall_times_s"].append(round(once(reuse), 6))
    for cell in cells.values():
        times = cell["wall_times_s"]
        cell["wall_time_s"] = sorted(times)[len(times) // 2]
    return [cells[True], cells[False]]


def bench_sweeps(point_n: int, workers_list) -> list:
    """Sweep-runner throughput over Fig. 3-style points per worker count."""
    points = [
        SweepPoint(
            fn=_fig3_point,
            kwargs={
                "n": point_n,
                "epsilon": 1e-3,
                "cycles_per_point": 1,
                "engine": "sync",
            },
            seed=seed,
            label=f"bench/n={point_n}/s{seed}",
        )
        for seed in range(SWEEP_POINTS)
    ]
    rows = []
    for workers in workers_list:
        report = run_sweep(points, workers=workers)
        rows.append(
            {
                "kind": "sweep",
                "point_n": point_n,
                "points": len(points),
                "workers": workers,
                "wall_time_s": round(report.wall_time, 6),
                "points_per_second": round(report.points_per_second, 3),
                "peak_rss_kib": report.max_peak_rss_kib,
            }
        )
    return rows


def run_end_to_end(quick: bool) -> dict:
    """The schema-2 section: full-run reuse ratio and sweep throughput.

    The reuse-vs-fresh gap is a few percent of a multi-second run, so
    the full mode uses more repeats than the per-cycle grid to keep the
    recorded ratio out of the noise.
    """
    repeats = 1 if quick else 7
    n = E2E_N_QUICK if quick else E2E_N
    runs = bench_full_runs(n, repeats)
    for cell in runs:
        reuse = cell["reuse_workspace"]
        print(
            f"{'gossiptrust.run reuse_workspace=' + str(reuse):55s} "
            f"n={n:5d}  {cell['wall_time_s']:8.3f}s  cycles={cell['cycles']}"
        )
    speedup = runs[1]["wall_time_s"] / max(runs[0]["wall_time_s"], 1e-12)
    sweeps = bench_sweeps(
        SWEEP_POINT_N_QUICK if quick else SWEEP_POINT_N,
        SWEEP_WORKERS_QUICK if quick else SWEEP_WORKERS,
    )
    for row in sweeps:
        print(
            f"{'sweep workers=' + str(row['workers']):55s} "
            f"n={row['point_n']:5d}  {row['wall_time_s']:8.3f}s  "
            f"{row['points_per_second']:.2f} pts/s"
        )
    return {
        "runs": runs,
        "workspace_reuse_speedup": round(speedup, 4),
        "sweeps": sweeps,
        "cpu_count": os.cpu_count(),
    }


def run_service(quick: bool) -> dict:
    """The schema-3 section: the long-lived service closed loop.

    One :func:`simulate_service` run at the pinned seed: bootstrap a
    mature synthetic network, stabilize the power-node set, then stream
    concentrated feedback batches (~1% of rater rows per epoch) through
    warm-started aggregation epochs while serving Bloom-store lookups.
    The recorded speedups compare the mean warm epoch against one cold
    from-scratch run on the same matrix and power-node set.
    """
    cfg = ServeSimConfig(
        n=SERVICE_N_QUICK if quick else SERVICE_N,
        epochs=SERVICE_EPOCHS_QUICK if quick else SERVICE_EPOCHS,
        events_per_epoch=50 if quick else 100,
        queries_per_epoch=200 if quick else 500,
        seed=SEED,
    )
    report = simulate_service(cfg)
    print(
        f"{'service ingest/query':55s} n={cfg.n:5d}  "
        f"{report.ingest_events_per_s:10.0f} ev/s  "
        f"{report.queries_per_s:8.0f} q/s  "
        f"staleness={report.mean_staleness_events:.1f}"
    )
    print(
        f"{'service warm epoch (mean) vs cold scratch':55s} n={cfg.n:5d}  "
        f"{report.warm_wall_s:8.3f}s vs {report.cold_wall_s:.3f}s  "
        f"x{report.wall_speedup:.2f} wall  x{report.step_speedup:.2f} steps"
    )
    return {
        "n": cfg.n,
        "epochs": cfg.epochs,
        "events_per_epoch": cfg.events_per_epoch,
        "queries_per_epoch": cfg.queries_per_epoch,
        "dirty_fraction": cfg.dirty_fraction,
        "mean_balance": cfg.mean_balance,
        "warmup_epochs": report.warmup_epochs,
        "power_nodes_stable": report.power_nodes_stable,
        "ingest_events_per_s": round(report.ingest_events_per_s, 1),
        "queries_per_s": round(report.queries_per_s, 1),
        "mean_staleness_events": round(report.mean_staleness_events, 2),
        "max_staleness_events": report.max_staleness_events,
        "warm_cycles_mean": round(report.warm_cycles, 2),
        "warm_steps_mean": round(report.warm_steps, 1),
        "warm_wall_s_mean": round(report.warm_wall_s, 6),
        "cold_cycles": report.cold_cycles,
        "cold_steps": report.cold_steps,
        "cold_wall_s": round(report.cold_wall_s, 6),
        "wall_speedup": round(report.wall_speedup, 3),
        "step_speedup": round(report.step_speedup, 3),
        "vector_error": round(report.vector_error, 8),
        "store_compression": round(report.store_compression, 3),
        "epochs_detail": [
            {
                "epoch": ep.epoch,
                "dirty_rows": ep.dirty_rows,
                "events_absorbed": ep.events_absorbed,
                "cycles": ep.cycles,
                "gossip_steps": ep.gossip_steps,
                "power_node_churn": round(ep.power_node_churn, 4),
                "wall_time_s": round(ep.wall_time_s, 6),
            }
            for ep in report.epoch_reports
        ],
    }


def run_large_n(quick: bool, xlarge: bool = False) -> dict:
    """The schema-4/5 section: the memory-bounded sparse kernel at large n.

    One converged probe-mode cycle per (n, dtype) on the pinned
    synthetic matrix, ``kernel="sparse"`` with workspace reuse on and
    the schema-5 shard split applied (results are shard-count
    invariant; the trajectory keeps the sharded path measured).  Peak
    RSS is metered per point, with the meter started *after* the trust
    matrix is built so the reading is the kernel's own working set on
    top of the resident baseline.  float32 points also record their
    score deviation against the float64 run at the same n (probe mode
    substitutes the exact oracle column, so this is ~0 by
    construction; the per-point ``gossip_error`` is what carries the
    dtype's estimate quality) and check against the per-dtype RSS
    budget when one is set (the 10^6 point: 3 GiB float64 / 2 GiB
    float32).  ``xlarge`` appends the n = 10^6 point — minutes of
    single-core SpGEMM, so it stays behind ``make bench-xlarge``.
    """
    tiers = LARGE_N_SWEEP[:1] if quick else LARGE_N_SWEEP
    if xlarge:
        tiers = tuple(tiers) + (XLARGE_N,)
    points = []
    for n in tiers:
        budget = LARGE_N_BUDGETS[n]
        shards = LARGE_N_SHARDS[n]
        S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
        v = np.full(n, 1.0 / n)
        v64 = None
        for dtype in ("float64", "float32"):
            rss_budget = budget.get(f"rss_kib_{dtype}", budget["rss_kib"])
            eng = make_engine(
                "sync",
                n=n,
                rng=RngStreams(SEED),
                epsilon=EPSILON,
                mode="probe",
                kernel="sparse",
                dtype=dtype,
                shards=shards,
            )
            meter = PeakRssMeter()
            t0 = time.perf_counter()
            result = eng.run_cycle(S, v)
            wall = time.perf_counter() - t0
            rss = meter.read_kib()
            point = {
                "n": n,
                "kernel": "sparse",
                "mode": "probe",
                "dtype": dtype,
                "shards": shards,
                "shard_workers": 1,
                "wall_time_s": round(wall, 6),
                "steps": int(result.steps),
                "converged": bool(result.converged),
                "gossip_error": float(result.gossip_error),
                "nnz": int(S.nnz),
                "peak_rss_kib": rss,
                "peak_rss_per_entry": meter.exact,
                "rss_budget_kib": rss_budget,
                "wall_budget_s": budget["wall_s"],
                "within_rss_budget": bool(rss <= rss_budget),
                "within_wall_budget": bool(wall <= budget["wall_s"]),
                "phases": {
                    k: round(float(s), 6)
                    for k, s in (getattr(result, "phase_times", {}) or {}).items()
                },
            }
            if dtype == "float64":
                v64 = np.asarray(result.v_next, dtype=np.float64)
            elif v64 is not None:
                dev = float(np.max(np.abs(np.asarray(result.v_next) - v64)))
                point["max_abs_dev_vs_float64"] = dev
            points.append(point)
            del eng  # release the pools before the next dtype's run
            print(
                f"{'large-n sparse dtype=' + dtype:55s} n={n:7d}  "
                f"{wall:8.3f}s  steps={point['steps']}  "
                f"rss={rss / 1024:.0f} MiB (budget {rss_budget / 1024:.0f})"
            )
        del S
    return {
        "tiers": list(tiers),
        "budgets": {str(n): LARGE_N_BUDGETS[n] for n in tiers},
        "shards": {str(n): LARGE_N_SHARDS[n] for n in tiers},
        "points": points,
        "all_within_budget": all(
            p["within_rss_budget"] and p["within_wall_budget"] for p in points
        ),
    }


def run_resilience(quick: bool) -> dict:
    """The schema-6 section: self-healing gossip under scripted chaos.

    Runs the churn-resilience sweep at a pinned seed: every strategy in
    the grid survives the ``crash`` fault plan (two bursts, partial
    rejoin) with the engines' mass-restoration guard armed at the
    default budget.  The recorded acceptance line is ``zero_isolated``:
    no partial-view strategy may leave a live node permanently without
    live peers after the plan heals.
    """
    from repro.experiments.churn_resilience import run_churn_resilience

    n = RESILIENCE_N_QUICK if quick else RESILIENCE_N
    strategies = RESILIENCE_STRATEGIES_QUICK if quick else RESILIENCE_STRATEGIES
    engines = RESILIENCE_ENGINES_QUICK if quick else RESILIENCE_ENGINES
    start = time.perf_counter()
    result = run_churn_resilience(
        n=n,
        strategies=strategies,
        plans=("crash",),
        engines=engines,
        repeats=1,
        workers=1,
    )
    wall = time.perf_counter() - start
    errors = {
        key: value
        for key, value in result.data.items()
        if not key.endswith(("/isolated", "/overhead"))
    }
    isolated = {
        key[: -len("/isolated")]: value
        for key, value in result.data.items()
        if key.endswith("/isolated")
    }
    overhead = {
        key[: -len("/overhead")]: value
        for key, value in result.data.items()
        if key.endswith("/overhead")
    }
    for cell, err in sorted(errors.items()):
        print(
            f"{'resilience ' + cell:55s} n={n:5d}  err={err:8.3g}  "
            f"iso={isolated[cell]:g}  ovh={overhead[cell]:.3f}"
        )
    return {
        "n": n,
        "plan": "crash",
        "strategies": list(strategies),
        "engines": list(engines),
        "error": errors,
        "isolated": isolated,
        "overhead_fraction": overhead,
        "max_error": max(errors.values()),
        "zero_isolated": all(v == 0.0 for v in isolated.values()),
        "wall_time_s": round(wall, 3),
    }


def run(
    quick: bool,
    *,
    label: str = "",
    commit: str = "",
    large_only: bool = False,
    xlarge: bool = False,
) -> dict:
    if large_only:
        return {
            "schema": 6,
            "quick": quick,
            "large_only": True,
            "xlarge": xlarge,
            "seed": SEED,
            "epsilon": EPSILON,
            "label": label,
            "commit": commit,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "large_n": run_large_n(quick, xlarge=xlarge),
        }
    repeats = 1 if quick else 3
    entries = []
    for n in N_SWEEP:
        cells = [
            ("sync", {"mode": "full", "kernel": "fast"}),
            ("sync", {"mode": "full", "kernel": "legacy", "check_every": 1}),
            ("sync", {"mode": "probe", "kernel": "fast"}),
        ]
        if n <= MESSAGE_N_MAX:
            cells.append(("message", {"max_rounds": 400}))
        for engine, overrides in cells:
            cell = bench_cell(engine, n, repeats, **overrides)
            cell_label = "+".join(
                [engine, *(f"{k}={v}" for k, v in sorted(overrides.items()))]
            )
            print(
                f"{cell_label:55s} n={n:5d}  {cell['wall_time_s']:8.3f}s  "
                f"steps={cell['steps']}"
            )
            entries.append(cell)
    return {
        "schema": 6,
        "quick": quick,
        "xlarge": xlarge,
        "seed": SEED,
        "epsilon": EPSILON,
        # Caller-supplied provenance (empty when not passed); never read
        # from a clock or VCS here so the run itself stays deterministic.
        "label": label,
        "commit": commit,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": entries,
        "end_to_end": run_end_to_end(quick),
        "service": run_service(quick),
        "large_n": run_large_n(quick, xlarge=xlarge),
        "resilience": run_resilience(quick),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="1 repeat per cell (CI smoke mode)"
    )
    parser.add_argument(
        "--large-only",
        action="store_true",
        help="run only the large-n sparse-kernel tier; exit non-zero when a "
        "wall-time or peak-RSS budget is blown (the `make bench-large` gate)",
    )
    parser.add_argument(
        "--xlarge",
        action="store_true",
        help="extend the large-n tier with the opt-in n=10^6 point "
        "(minutes of single-core SpGEMM; the `make bench-xlarge` gate)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engines.json",
        help="output JSON path (default: BENCH_engines.json at the repo root)",
    )
    parser.add_argument(
        "--label",
        default="",
        help="free-form provenance label stamped into the payload "
        "(e.g. a PR id or machine name; caller-supplied, not derived)",
    )
    parser.add_argument(
        "--commit",
        default="",
        help="commit SHA stamped into the payload (pass `git rev-parse HEAD` "
        "from the caller; the runner never shells out to git itself)",
    )
    args = parser.parse_args(argv)
    payload = run(
        quick=args.quick,
        label=args.label,
        commit=args.commit,
        large_only=args.large_only,
        xlarge=args.xlarge,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if (args.large_only or args.xlarge) and not payload["large_n"]["all_within_budget"]:
        print("large-n budget blown", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
