#!/usr/bin/env python
"""Pinned engine benchmark sweep -> ``BENCH_engines.json`` at the repo root.

Runs one aggregation cycle per (engine, n) on a fixed synthetic matrix
and seed, records median wall time, step count, and peak memory, and
writes the machine-readable trajectory file future PRs diff against for
no-regression checks.  Two pinned modes:

* default — n in {250, 500, 1000}, 3 repeats per cell;
* ``--quick`` — same n sweep, 1 repeat (CI's bench-smoke job).

The sync engine is measured twice — fast kernel at its defaults and the
legacy reference kernel at ``check_every=1`` (the pre-kernel per-step
cadence) — so the recorded trajectory carries its own baseline and the
speedup is visible in the artifact itself.  The message engine runs at
n <= 500 (it simulates every point-to-point message; larger sweeps
belong to the pytest-benchmark suite).

Usage::

    PYTHONPATH=src python tools/bench_runner.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.experiments.synthetic import synthetic_trust_matrix  # noqa: E402
from repro.gossip.factory import make_engine  # noqa: E402
from repro.utils.rng import RngStreams  # noqa: E402

SEED = 0
EPSILON = 1e-4
N_SWEEP = (250, 500, 1000)
#: message-engine cap: it simulates every message, so it sweeps small n
MESSAGE_N_MAX = 500


def _peak_rss_kib() -> float:
    """Max resident set size so far, in KiB (0.0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover
        peak /= 1024.0
    return float(peak)


def bench_cell(engine: str, n: int, repeats: int, **overrides) -> dict:
    """Median-of-``repeats`` wall time for one engine at one n."""
    S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
    v = np.full(n, 1.0 / n)
    times = []
    steps = converged = None
    for _ in range(repeats):
        eng = make_engine(
            engine, n=n, rng=RngStreams(SEED), epsilon=EPSILON, **overrides
        )
        t0 = time.perf_counter()
        result = eng.run_cycle(S, v)
        times.append(time.perf_counter() - t0)
        steps, converged = int(result.steps), bool(result.converged)
    return {
        "engine": engine,
        "n": n,
        "wall_time_s": round(sorted(times)[len(times) // 2], 6),
        "wall_times_s": [round(t, 6) for t in times],
        "steps": steps,
        "converged": converged,
        "peak_rss_kib": _peak_rss_kib(),
        "options": overrides,
    }


def run(quick: bool) -> dict:
    repeats = 1 if quick else 3
    entries = []
    for n in N_SWEEP:
        cells = [
            ("sync", {"mode": "full", "kernel": "fast"}),
            ("sync", {"mode": "full", "kernel": "legacy", "check_every": 1}),
            ("sync", {"mode": "probe", "kernel": "fast"}),
        ]
        if n <= MESSAGE_N_MAX:
            cells.append(("message", {"max_rounds": 400}))
        for engine, overrides in cells:
            cell = bench_cell(engine, n, repeats, **overrides)
            label = "+".join(
                [engine] + [f"{k}={v}" for k, v in sorted(overrides.items())]
            )
            print(
                f"{label:55s} n={n:5d}  {cell['wall_time_s']:8.3f}s  "
                f"steps={cell['steps']}"
            )
            entries.append(cell)
    return {
        "schema": 1,
        "quick": quick,
        "seed": SEED,
        "epsilon": EPSILON,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="1 repeat per cell (CI smoke mode)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engines.json",
        help="output JSON path (default: BENCH_engines.json at the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
