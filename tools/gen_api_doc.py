"""Generate docs/API.md from the package's public surface (one-off tool)."""
import importlib, inspect, pkgutil
import repro

lines = ["# API reference", "",
         "Auto-generated summary of the public surface (`__all__` of every",
         "module).  Regenerate with `python tools/gen_api_doc.py`.", ""]

def doc_first_line(obj):
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0] if doc else ""

seen = set()
mods = []
for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
    mods.append(m.name)
for name in sorted(mods):
    try:
        mod = importlib.import_module(name)
    except Exception as exc:
        continue
    public = getattr(mod, "__all__", None)
    if not public:
        continue
    lines.append(f"## `{name}`")
    first = doc_first_line(mod)
    if first:
        lines.append("")
        lines.append(first)
    lines.append("")
    for sym in public:
        obj = getattr(mod, sym, None)
        if obj is None or id(obj) in seen:
            continue
        kind = "class" if inspect.isclass(obj) else ("function" if callable(obj) else "data")
        summary = doc_first_line(obj)
        lines.append(f"- **`{sym}`** ({kind}) — {summary}")
    lines.append("")

# Static epilogue: the performance model is part of the public contract
# (engine/kernel options callers are expected to tune), so it rides along
# with every regeneration rather than living only in DESIGN.md.
lines += [
    "## Performance model",
    "",
    "`SynchronousGossipEngine` (`repro.gossip.engine`) exposes the knobs",
    "that govern gossip-cycle cost:",
    "",
    "- **`kernel`** — `\"fast\"` (default): allocation-free scatter-add",
    "  steps over preallocated buffers via `csr_matvecs`; `\"sparse\"`:",
    "  the memory-bounded large-n path — X and W stay CSR for the whole",
    "  cycle in geometrically-grown `CsrPool`s, stepped by pooled",
    "  `csr_matmat` SpGEMMs with blocked `csr_todense` estimate gathers,",
    "  with saturated shards handed off to dense SpMM slots",
    "  (bitwise-identical; pool arrays released);",
    "  `\"legacy\"`: the reference per-step `csr_matrix` construction.",
    "  All consume the same partner stream and stop on the same step.",
    "- **`shards`** — contiguous column shards the sparse kernel's",
    "  probe working set splits into, each an independent pool triple",
    "  (default 1; the int32-index floor `min_shards_for(n, p)` is",
    "  applied automatically). Result-invariant (bitwise).",
    "- **`shard_workers`** — worker processes stepping sparse-kernel",
    "  shards concurrently (default 1 = serial). Workers attach the",
    "  engine's `\"shared\"`/`\"memmap\"` workspace by manifest — no",
    "  array pickling — and results are bitwise-identical to serial.",
    "- **`dtype`** — `\"float64\"` (default) or `\"float32\"` (halves",
    "  workspace memory; estimate drift stays orders below epsilon, and",
    "  an armed sanitizer widens its conservation tolerance to 1e-4).",
    "- **`block_rows`** — rows per estimate/residual tile in the sparse",
    "  kernel (default 0 = a ~128 KiB cache block). Result-invariant.",
    "- **`workspace_backend`** — `\"private\"` heap buffers (default),",
    "  `\"shared\"` POSIX shared-memory segments, or `\"memmap\"`",
    "  file-backed maps (`repro.gossip.memory`; non-private backends",
    "  require `reuse_workspace=True`).",
    "- **`check_every`** — convergence-check cadence (default 8). Coarse",
    "  checks skip the expensive residual scan; once the residual is",
    "  within `8x epsilon` the fast kernel switches to per-step checks,",
    "  so the reported step count keeps Algorithm 1's granularity.",
    "- **`densify_threshold`** — occupied-fraction at which the fast",
    "  kernel switches from sparse warm-start products to dense steps,",
    "  and at which the sparse kernel hands a shard off to dense SpMM",
    "  (default 0.25; `0.0` starts dense immediately). Result-invariant.",
    "- **`mode`** — `\"full\"` tracks all n columns; `\"probe\"` tracks",
    "  `probe_columns` sampled columns (plus the heaviest-mass column)",
    "  for large sweeps.",
    "- **`reuse_workspace`** — keep the cycle buffers in a persistent",
    "  `Workspace` keyed on `(n, p)` that survives across `run_cycle`",
    "  calls and runs (default `True`; `False` restores the per-cycle",
    "  allocation baseline, `invalidate_workspace()` drops it",
    "  explicitly). Warm and fresh workspaces produce identical results",
    "  step for step.",
    "",
    "`MessageGossipEngine` keeps per-node state in array-backed",
    "`TripletVector`s (pooled across cycles and re-initialized in place",
    "via `TripletVector.reset`) and evaluates the per-round epsilon",
    "criterion population-at-once in a reusable `EstimatesWorkspace`;",
    "its dominant cost is the simulated transport, not the convergence",
    "bookkeeping.",
    "",
    "`repro.experiments.runner` fans experiment sweeps over worker",
    "processes: declare `SweepPoint`s (picklable point function + kwargs",
    "+ root seed) and call `run_sweep(points, workers=N)` — ordered",
    "results, per-point wall time and peak RSS, identical values at any",
    "worker count (`--workers` on the CLI).",
    "",
    "Run `PYTHONPATH=src python tools/bench_runner.py` to regenerate the",
    "tracked benchmark trajectory in `BENCH_engines.json` (schema 5:",
    "per-cycle engine grid with per-entry peak RSS and phase breakdowns,",
    "end-to-end `GossipTrust.run` and sweep-throughput sections, the",
    "service closed loop, and the `large_n` sparse-kernel tier with",
    "per-point RSS/wall budgets and shard configuration — `make",
    "bench-large` runs just that tier and fails when a budget is blown;",
    "`make bench-xlarge` adds the opt-in n = 10^6 sharded point), or",
    "`pytest benchmarks/bench_engines.py` for the asserting comparisons",
    "(fast >= 3x legacy at n = 1000, sparse/fast step-and-score parity,",
    "the sparse RSS budget at n = 10^4, workspace reuse at least",
    "break-even, parallel sweep faster than serial on multi-core boxes).",
    "",
]
import os
os.makedirs("docs", exist_ok=True)
open("docs/API.md", "w").write("\n".join(lines) + "\n")
print(f"wrote docs/API.md ({len(lines)} lines)")
