"""Generate docs/API.md from the package's public surface (one-off tool)."""
import importlib, inspect, pkgutil
import repro

lines = ["# API reference", "",
         "Auto-generated summary of the public surface (`__all__` of every",
         "module).  Regenerate with `python tools/gen_api_doc.py`.", ""]

def doc_first_line(obj):
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0] if doc else ""

seen = set()
mods = []
for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
    mods.append(m.name)
for name in sorted(mods):
    try:
        mod = importlib.import_module(name)
    except Exception as exc:
        continue
    public = getattr(mod, "__all__", None)
    if not public:
        continue
    lines.append(f"## `{name}`")
    first = doc_first_line(mod)
    if first:
        lines.append("")
        lines.append(first)
    lines.append("")
    for sym in public:
        obj = getattr(mod, sym, None)
        if obj is None or id(obj) in seen:
            continue
        kind = "class" if inspect.isclass(obj) else ("function" if callable(obj) else "data")
        summary = doc_first_line(obj)
        lines.append(f"- **`{sym}`** ({kind}) — {summary}")
    lines.append("")
import os
os.makedirs("docs", exist_ok=True)
open("docs/API.md", "w").write("\n".join(lines) + "\n")
print(f"wrote docs/API.md ({len(lines)} lines)")
