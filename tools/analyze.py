#!/usr/bin/env python
"""Run the project GT lint rules over source trees.

Usage::

    python tools/analyze.py src tests               # lint these trees
    python tools/analyze.py --list-rules            # show the catalog
    python tools/analyze.py --select GT001,GT003 src
    python tools/analyze.py --format=github src     # CI annotations
    python tools/analyze.py --list-suppressions src # sentinel inventory

Exit status: 0 when clean, 1 when violations were found, 2 on usage
errors.  ``--list-suppressions`` reports every ``# noqa`` sentinel with
its codes and justification (exit 0; GT009 is what *fails* bare ones).
See DESIGN.md ("Static analysis & sanitizers") for the rule catalog
and how to add a rule.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Sequence

# Runnable straight from a checkout: put <repo>/src on the path so the
# repro.analysis framework imports without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.linter import Rule, lint_paths, load_sources  # noqa: E402
from repro.analysis.rules import ALL_RULES  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="analyze",
        description="project AST lint: GT invariant rules",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="output style: terminal text or GitHub Actions annotations",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--list-suppressions",
        action="store_true",
        help="report every # noqa sentinel (codes + justification) and exit",
    )
    return parser


def select_rules(spec: "str | None") -> List[Rule]:
    """The rule subset named by ``spec`` (comma-separated codes)."""
    if spec is None:
        return list(ALL_RULES)
    wanted = {tok.strip().upper() for tok in spec.split(",") if tok.strip()}
    known = {rule.code for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"analyze: unknown rule code(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in ALL_RULES if rule.code in wanted]


def list_suppressions(paths: Sequence[str]) -> int:
    """Print every ``# noqa`` sentinel under ``paths`` with its why."""
    sources, parse_errors = load_sources(paths)
    for v in parse_errors:
        print(v.format("text"), file=sys.stderr)
    count = 0
    for src in sources:
        for sup in src.suppressions:
            count += 1
            codes = "*" if sup.blanket else ",".join(sorted(sup.codes))
            why = sup.justification or "(no justification)"
            print(f"{sup.path}:{sup.line}: {codes} -- {why}")
    print(f"analyze: {count} suppression(s) across "
          f"{len(sources)} file(s)", file=sys.stderr)
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.include) if rule.include else "(all files)"
            print(f"{rule.code}  {rule.summary}")
            print(f"       scope: {scope}")
        return 0
    if not args.paths:
        print("analyze: no paths given (try: python tools/analyze.py src tests)",
              file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"analyze: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.list_suppressions:
        return list_suppressions(args.paths)
    try:
        rules = select_rules(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    violations = lint_paths(args.paths, rules)
    for v in violations:
        print(v.format(args.format))
    if violations:
        print(
            f"analyze: {len(violations)} violation(s) across "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"analyze: clean ({', '.join(r.code for r in rules)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
