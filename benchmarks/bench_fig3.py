"""Bench: Fig. 3 — gossip steps vs epsilon for three network sizes.

Paper scale: n in {1000, 2000, 4000}, epsilon from 1e-1 down to 1e-5.
Shape assertions: steps grow as epsilon tightens; small-epsilon curves
for different sizes nearly coincide (threshold-dominated); the
large-epsilon regime is size-dominated; growth is logarithmic, not
linear, in n.
"""

from repro.experiments.fig3_gossip_steps import run_fig3

SIZES = (1000, 2000, 4000)
EPSILONS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def test_fig3_gossip_step_counts(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fig3(sizes=SIZES, epsilons=EPSILONS, repeats=2, cycles_per_point=2),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    for n in SIZES:
        curve = result.series_by_label(f"n={n}")
        # Steps increase (weakly) as epsilon tightens along the sweep.
        assert curve.y[-1] > curve.y[0]

    # Threshold-dominated regime: at the tightest epsilon the three
    # sizes stay within a small band (the paper's scalability claim).
    tight = [result.series_by_label(f"n={n}").y[-1] for n in SIZES]
    assert max(tight) - min(tight) < 0.35 * max(tight)

    # Logarithmic size growth: 4x nodes costs only a few extra steps.
    loose = [result.series_by_label(f"n={n}").y[0] for n in SIZES]
    assert loose[2] < loose[0] + 10
