"""Benchmark-suite helpers.

Every benchmark regenerates a paper artifact (or an ablation) and
persists the rendered text under ``benchmarks/results/`` so the
regenerated tables/figures survive the run and can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write an ExperimentResult's rendering to results/<id>.txt."""

    def _save(result, suffix: str = "") -> str:
        name = result.experiment_id + (f"_{suffix}" if suffix else "")
        path = results_dir / f"{name}.txt"
        text = result.render()
        path.write_text(text + "\n")
        return text

    return _save
