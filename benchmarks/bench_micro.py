"""Microbenchmarks of the hot kernels.

These are the true pytest-benchmark timing loops (many rounds), sized
so each operation runs in milliseconds: one gossip step, one exact
aggregation product, Bloom membership, Chord lookup, topology
generation, and workload sampling.
"""

import numpy as np
import pytest

from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.distributions.query import TwoSegmentZipf
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.pushsum import push_sum_step
from repro.network.dht import ChordRing
from repro.network.topology import gnutella_like
from repro.storage.bloom import BloomFilter
from repro.utils.rng import RngStreams


@pytest.fixture(scope="module")
def S1000():
    return synthetic_trust_matrix(1000, rng=RngStreams(0).get("m"))


def test_push_sum_step_4096_nodes(benchmark):
    n = 4096
    rng = np.random.default_rng(0)
    x = rng.random(n)
    w = rng.random(n)
    ids = np.arange(n)
    targets = rng.integers(0, n - 1, size=n)
    targets[targets >= ids] += 1
    benchmark(push_sum_step, x, w, targets)


def test_full_gossip_cycle_1000_nodes(benchmark, S1000):
    engine = SynchronousGossipEngine(1000, epsilon=1e-4, mode="full", rng=1)
    v = np.full(1000, 1e-3)
    benchmark.pedantic(
        lambda: engine.run_cycle(S1000, v), rounds=2, iterations=1
    )


def test_probe_gossip_cycle_1000_nodes(benchmark, S1000):
    engine = SynchronousGossipEngine(
        1000, epsilon=1e-4, mode="probe", probe_columns=64, rng=2
    )
    v = np.full(1000, 1e-3)
    benchmark.pedantic(
        lambda: engine.run_cycle(S1000, v), rounds=5, iterations=1
    )


def test_exact_aggregation_product_1000_nodes(benchmark, S1000):
    v = np.full(1000, 1e-3)
    benchmark(S1000.aggregate, v)


def test_bloom_membership(benchmark):
    bf = BloomFilter(10_000, 0.01)
    bf.update(range(10_000))
    benchmark(lambda: 5000 in bf)


def test_chord_lookup_1024_nodes(benchmark):
    ring = ChordRing(range(1024), bits=32)
    counter = iter(range(10**9))
    benchmark(lambda: ring.lookup(0, ("k", next(counter))))


def test_gnutella_topology_generation_1000(benchmark):
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: gnutella_like(1000, rng=next(counter)), rounds=3, iterations=1
    )


def test_feedback_count_sampling_100k(benchmark):
    dist = FeedbackCountDistribution()
    rng = np.random.default_rng(0)
    benchmark(dist.sample_counts, 100_000, rng)


def test_query_rank_sampling_100k(benchmark):
    dist = TwoSegmentZipf(100_000)
    rng = np.random.default_rng(0)
    benchmark(dist.sample_ranks, 100_000, rng)
