"""Bench: Table 3 — errors under three convergence settings, n = 1000.

Runs the protocol in full (per-node, per-component) mode like the
paper.  Shape assertions: tighter (epsilon, delta) costs more cycles
and steps and yields smaller gossip/aggregation errors; gossip error
lands well below its epsilon; aggregation error below its delta.
"""

from repro.experiments.table3_errors import PAPER_SETTINGS, run_table3


def test_table3_error_tradeoff(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_table3(n=1000, settings=PAPER_SETTINGS, repeats=2),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    rows = result.data["rows"]
    tight = rows["1e-05/0.0001"]
    mid = rows["0.0001/0.001"]
    loose = rows["0.001/0.01"]

    # Cost ordering (paper: 19/15/5 cycles, 35/28/22 steps).
    assert tight["cycles"] >= mid["cycles"] >= loose["cycles"]
    assert tight["steps"] > loose["steps"]

    # Accuracy ordering (paper: 1e-6/7e-6/1.6e-4 gossip error).
    assert tight["gossip_error"] < mid["gossip_error"] < loose["gossip_error"]
    assert (
        tight["aggregation_error"]
        < mid["aggregation_error"]
        < loose["aggregation_error"]
    )

    # Errors sit below their thresholds.
    for (eps, delta), row in zip(
        ((1e-5, 1e-4), (1e-4, 1e-3), (1e-3, 1e-2)), (tight, mid, loose)
    ):
        assert row["gossip_error"] < eps
        assert row["aggregation_error"] < delta
