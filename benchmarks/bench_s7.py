"""Bench: the §7 future-work features, implemented and measured.

* ``qof`` — quality-of-feedback vote weighting (dual-score suggestion);
* ``objects`` — object/version reputation against poisoning;
* ``structured`` — DHT-ordered all-reduce acceleration.
"""

from repro.experiments.objects_experiment import run_objects
from repro.experiments.qof_experiment import run_qof
from repro.experiments.structured_experiment import run_structured


def test_qof_extension(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_qof(n=600, gammas=(0.1, 0.2, 0.3, 0.4), repeats=3),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Witnesses are separable when judged against a clean consensus.
    for gamma in ("0.1", "0.2", "0.3", "0.4"):
        assert result.data[gamma]["gap_vs_truth"] > 0
    # Vote modulation materially helps somewhere in the attacked range...
    ratios = [
        result.data[g]["rms_qof"] / result.data[g]["rms_plain"]
        for g in ("0.1", "0.2", "0.3", "0.4")
    ]
    assert min(ratios) < 0.95
    # ...and is never catastrophic anywhere (honest finding: the
    # self-bootstrapped alternation cannot replace power nodes).
    assert max(ratios) < 1.25


def test_object_reputation_extension(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_objects(
            n_peers=300, n_files=200, gammas=(0.1, 0.3, 0.5), downloads=6000,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    for gamma in ("0.1", "0.3", "0.5"):
        # Random selection hits the poisoned base rate (~2/3 for V=3).
        assert result.data[f"random/{gamma}"] > 0.5
        # Reputation-weighted voting keeps poisoning rare.
        assert result.data[f"weighted/{gamma}"] < 0.15
    # Unweighted voting collapses once attackers dominate the votes.
    assert result.data["weighted/0.5"] < result.data["votes/0.5"]


def test_structured_acceleration_extension(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_structured(sizes=(250, 500, 1000, 2000), repeats=3),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    for n in ("250", "500", "1000", "2000"):
        row = result.data[n]
        # "Can perform even better in a structured P2P system" (§7):
        # the DHT ordering buys ~5x fewer rounds, exactly.
        assert row["gossip_steps"] / row["structured_rounds"] > 3.5
