"""Bench: success-rate vs load-balance tradeoff of selection policies.

Measured finding (beyond the paper): pure argmax selection is *not* the
success-maximizing policy under attack — funneling every download to
the current top peer starves the feedback ledger of information about
everyone else, so the reputation estimates stay uninformed and
selection quality stalls.  Softened proportional selection (sharpness
2-4) explores enough to keep learning and beats argmax on success while
spreading load.  NoTrust remains the flattest-load, lowest-information
extreme.
"""

from repro.experiments.load_experiment import run_load


def test_selection_policy_load_tradeoff(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_load(
            n=400,
            n_files=8000,
            gamma=0.2,
            queries=4000,
            sharpness_values=(0.0, 0.5, 1.0, 2.0, 4.0),
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    nt = result.data["notrust(s=0)"]
    argmax = result.data["argmax"]
    sharp = result.data["proportional(s=4)"]

    # NoTrust spreads load the flattest.
    assert nt["gini"] <= min(v["gini"] for v in result.data.values()) + 1e-9
    # Argmax concentrates the single heaviest peer the most.
    assert argmax["max_share"] >= max(
        v["max_share"] for k, v in result.data.items() if k != "argmax"
    ) - 0.02
    # Exploration pays: sharpened-but-stochastic selection beats both
    # the no-information and the no-exploration extremes on success.
    assert sharp["success"] > nt["success"]
    assert sharp["success"] >= argmax["success"] - 0.02
