"""Bench: Fig. 5 — query success rate, GossipTrust vs NoTrust, n = 1000.

Paper scale: 1000 peers, >100k files, reputations refreshed every 1000
queries.  Shape assertions: GossipTrust degrades gently (>= ~75%
success at 20% malicious); NoTrust falls roughly linearly and is
clearly below GossipTrust at every attacked point; at 0% malicious the
two coincide.
"""

from repro.experiments.fig5_filesharing import run_fig5

GAMMAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40)


def test_fig5_query_success(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fig5(
            n=1000,
            n_files=100_000,
            gammas=GAMMAS,
            queries=5000,
            refresh_interval=1000,
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    gt = result.data["GossipTrust"]
    nt = result.data["NoTrust"]

    # No attack: both policies succeed alike.
    assert abs(gt[0.0] - nt[0.0]) < 0.05

    # GossipTrust wins at every attacked gamma in the paper's claimed
    # range ("even when the system has 20% malicious peers, it can
    # still maintain around 80%").  Beyond that, our dynamic power-node
    # selection can be captured by the de-facto-colluding inverted
    # raters and the win is no longer reliable — the capture regime is
    # recorded in EXPERIMENTS.md.
    for g in GAMMAS:
        if 0.10 <= g <= 0.20:
            assert gt[g] > nt[g]

    # Paper: ~80% success maintained at 20% malicious.
    assert gt[0.20] > 0.75

    # NoTrust falls sharply with more malicious peers.
    assert nt[0.40] < nt[0.0] - 0.2
