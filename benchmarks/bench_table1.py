"""Bench: Table 1 / Fig. 2 — the three-node worked example.

Regenerates the per-step gossip table and asserts the paper's stated
consensus (0.2 on all three nodes) exactly.
"""

import numpy as np

from repro.experiments.table1_example import run_table1


def test_table1_worked_example(benchmark, save_result):
    result = benchmark(run_table1)
    save_result(result)
    assert result.data["exact"] is True
    assert np.allclose(result.data["consensus"], 0.2)
