"""Ablation benches for the design choices DESIGN.md calls out.

* probe vs full engine — the probe-column substitution must not change
  measured step counts or the output vector's ranking;
* power-node count q — more power nodes help against attacks up to a
  point, mirroring the alpha sweep of Fig. 4(a);
* look-ahead random walk — PowerTrust's LRW halves iteration counts;
* neighbor-restricted vs global gossip partners — global mixing (the
  paper's default) converges at least as fast as neighbor-only.
"""

import numpy as np

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.baselines.powertrust import PowerTrust
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.message_engine import MessageGossipEngine
from repro.metrics.errors import kendall_tau, rms_relative_error
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like
from repro.network.transport import Transport
from repro.peers.threat_models import build_independent_scenario
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams


def _rows(S):
    csr = S.sparse()
    return [
        dict(zip(csr.indices[csr.indptr[i]:csr.indptr[i+1]].tolist(),
                 csr.data[csr.indptr[i]:csr.indptr[i+1]].tolist()))
        for i in range(S.n)
    ]


def test_ablation_probe_vs_full_agreement(benchmark):
    """Probe mode is a measurement substitution, not a protocol change."""
    n = 600
    streams = RngStreams(0)
    S = synthetic_trust_matrix(n, rng=streams.get("m"))
    v = np.full(n, 1.0 / n)

    def run():
        full = SynchronousGossipEngine(n, epsilon=1e-4, mode="full", rng=1)
        probe = SynchronousGossipEngine(
            n, epsilon=1e-4, mode="probe", probe_columns=64, rng=1
        )
        return full.run_cycle(S, v), probe.run_cycle(S, v)

    full_res, probe_res = benchmark.pedantic(run, rounds=1, iterations=1)
    # Step counts agree within a small band.
    assert abs(full_res.steps - probe_res.steps) <= max(6, 0.25 * full_res.steps)
    # Full-mode gossiped vector preserves the exact ranking.
    assert kendall_tau(full_res.exact, full_res.v_next) > 0.99


def test_ablation_power_node_count(benchmark, save_result):
    """Sweep q at fixed gamma: some power nodes help, too many dilute."""
    from repro.experiments.base import ExperimentResult
    from repro.metrics.reporting import Series

    n, gamma = 600, 0.25
    fractions = (0.0, 0.005, 0.01, 0.05, 0.2)

    def two_rounds(S, cfg):
        # The system's actual procedure: round 1 selects the anchors
        # (so q genuinely matters), round 2 aggregates with them fixed.
        first = exact_global_reputation(S, cfg, raise_on_budget=False)
        return exact_global_reputation(
            S, cfg, power_nodes=first.power_nodes, raise_on_budget=False
        ).vector

    def run():
        series = Series(label="rms vs power fraction")
        for frac in fractions:
            vals = []
            for seed in range(3):
                streams = RngStreams(seed)
                sc = build_independent_scenario(n, gamma, rng=streams.get("sc"))
                alpha = 0.15 if frac > 0 else 0.0
                cfg = GossipTrustConfig(
                    n=n, alpha=alpha, power_node_fraction=frac or 0.01,
                    max_cycles=60,
                )
                v = two_rounds(sc.S_true, cfg)
                u = two_rounds(sc.S_attacked, cfg)
                vals.append(rms_relative_error(v, u, cap=10.0))
            series.add(frac, float(np.mean(vals)))
        return ExperimentResult(
            experiment_id="ablation_q",
            title="RMS error vs power-node fraction (gamma=0.25, two-round procedure)",
            series=[series],
            data=dict(zip(series.x, series.y)),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    # Having power nodes (1%) beats having none.
    assert result.data[0.01] < result.data[0.0]
    # The sweep is a real sweep: q changes the outcome.
    positive = [result.data[f] for f in fractions if f > 0]
    assert max(positive) - min(positive) > 1e-6


def test_ablation_lrw_speedup(benchmark):
    """PowerTrust's look-ahead random walk roughly halves iterations."""
    n = 400
    S = synthetic_trust_matrix(n, rng=RngStreams(2).get("m"))

    def run():
        with_lrw = PowerTrust(S, lookahead=True, alpha=1e-9, ring_bits=None).compute()
        without = PowerTrust(S, lookahead=False, alpha=1e-9, ring_bits=None).compute()
        return with_lrw, without

    with_lrw, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_lrw.iterations <= 0.7 * without.iterations
    assert np.allclose(with_lrw.vector, without.vector, atol=1e-6)


def test_ablation_topology_family(benchmark, save_result):
    """Neighbor-restricted gossip feels graph conductance; global doesn't.

    Runs the message engine with neighbors_only=True over the three
    topology families.  Expectation: the Gnutella-like (power-law) and
    random graphs — good expanders — converge in similar round counts,
    while a barely-rewired small-world ring (beta = 0.02, high diameter,
    poor conductance) needs materially more; global partner choice is
    immune to the family.
    """
    import numpy as np

    from repro.experiments.base import ExperimentResult
    from repro.metrics.reporting import TextTable
    from repro.network.topology import random_graph, small_world_graph

    n = 64
    streams = RngStreams(7)
    S = synthetic_trust_matrix(n, rng=streams.get("m"))
    rows = _rows(S)
    v = np.full(n, 1.0 / n)

    def run_on(topo, seed, neighbors_only=True):
        sim = Simulator()
        overlay = Overlay(topo, rng=seed + 1)
        transport = Transport(sim, latency=0.4, rng=seed + 2)
        engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-5, round_interval=1.0,
            neighbors_only=neighbors_only, rng=seed + 3, max_rounds=800,
        )
        return engine.run_cycle(rows, v).steps

    def run():
        families = {
            "gnutella(BA)": lambda s: gnutella_like(n, rng=s),
            "random(ER)": lambda s: random_graph(n, avg_degree=6.0, rng=s),
            "ring(WS b=0.02)": lambda s: small_world_graph(n, k=4, beta=0.02, rng=s),
        }
        table = TextTable(
            ["family", "neighbor_rounds", "global_rounds"],
            title=f"Gossip rounds by overlay family (n={n})",
        )
        data = {}
        for name, make in families.items():
            neigh = float(np.mean([run_on(make(s), s * 10) for s in (1, 2, 3)]))
            glob = float(
                np.mean(
                    [run_on(make(s), s * 10, neighbors_only=False) for s in (1, 2, 3)]
                )
            )
            table.add_row([name, neigh, glob])
            data[name] = {"neighbor": neigh, "global": glob}
        return ExperimentResult(
            experiment_id="ablation_topology",
            title="Topology-family sensitivity of neighbor-restricted gossip",
            tables=[table],
            data=data,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    # Poor-conductance rings pay for neighbor restriction...
    assert (
        result.data["ring(WS b=0.02)"]["neighbor"]
        > 1.3 * result.data["gnutella(BA)"]["neighbor"]
    )
    # ...while global partner choice is family-agnostic.
    globals_ = [row["global"] for row in result.data.values()]
    assert max(globals_) - min(globals_) < 12


def test_ablation_partner_scope(benchmark):
    """Global partner choice mixes at least as fast as neighbor-only."""
    n = 64
    streams = RngStreams(3)
    S = synthetic_trust_matrix(n, rng=streams.get("m"))
    rows = _rows(S)
    v = np.full(n, 1.0 / n)

    def run_mode(neighbors_only, seed):
        sim = Simulator()
        overlay = Overlay(gnutella_like(n, rng=seed), rng=seed + 1)
        transport = Transport(sim, latency=0.4, rng=seed + 2)
        engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-5, round_interval=1.0,
            neighbors_only=neighbors_only, rng=seed + 3, max_rounds=400,
        )
        return engine.run_cycle(rows, v)

    def run():
        glob = [run_mode(False, s).steps for s in (10, 20, 30)]
        neigh = [run_mode(True, s).steps for s in (10, 20, 30)]
        return float(np.mean(glob)), float(np.mean(neigh))

    global_steps, neighbor_steps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert global_steps <= neighbor_steps + 5


def test_ablation_async_vs_sync_gossip(benchmark):
    """Poisson-clock gossip costs the same per send as synchronous rounds.

    The classic asynchronous-gossip result: removing the global round
    clock does not change the per-send convergence cost.  Measured as
    equivalent rounds (sends per node) at matched epsilon.
    """
    import numpy as np

    from repro.gossip.async_engine import AsyncMessageGossipEngine

    n = 48
    streams = RngStreams(5)
    S = synthetic_trust_matrix(n, rng=streams.get("m"))
    rows = _rows(S)
    v = np.full(n, 1.0 / n)

    def sync_rounds(seed):
        sim = Simulator()
        overlay = Overlay(gnutella_like(n, rng=seed), rng=seed + 1)
        transport = Transport(sim, latency=0.3, rng=seed + 2)
        engine = MessageGossipEngine(
            sim, transport, overlay, epsilon=1e-5, round_interval=1.0, rng=seed + 3
        )
        return engine.run_cycle(rows, v).steps

    def async_rounds(seed):
        sim = Simulator()
        overlay = Overlay(gnutella_like(n, rng=seed), rng=seed + 1)
        transport = Transport(sim, latency=0.3, rng=seed + 2)
        engine = AsyncMessageGossipEngine(
            sim, transport, overlay, epsilon=1e-5, rng=seed + 3
        )
        res = engine.run_cycle(rows, v)
        assert res.converged
        return res.steps

    def run():
        sync = float(np.mean([sync_rounds(s) for s in (11, 22, 33)]))
        asyn = float(np.mean([async_rounds(s) for s in (11, 22, 33)]))
        return sync, asyn

    sync, asyn = benchmark.pedantic(run, rounds=1, iterations=1)
    # Same order of magnitude; the async detector (coarser, time-based)
    # typically runs somewhat longer but never an order more.
    assert asyn < 4 * sync
    assert asyn > 0.5 * sync
