"""Bench: the extension experiments behind the §7 claims.

* fault tolerance — gossip error under message loss, link failures,
  and churn on the message-level engine;
* storage — Bloom reputation store memory/accuracy sweep;
* overhead — messages and DHT hops vs the EigenTrust/PowerTrust
  baselines.
"""

from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.overhead_comparison import run_overhead
from repro.experiments.storage_experiment import run_storage


def test_fault_tolerance(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fault_tolerance(
            n=128,
            loss_rates=(0.0, 0.05, 0.10, 0.20, 0.30),
            link_failure_fractions=(0.0, 0.1, 0.2),
            departure_counts=(0, 8, 16),
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Fault-free gossip is essentially exact.
    assert result.data["loss/0"] < 1e-3
    # Error grows with loss but the protocol never diverges.
    assert result.data["loss/0.05"] < result.data["loss/0.3"]
    assert result.data["loss/0.3"] < 1.0
    # Random-partner gossip shrugs off 20% failed overlay links.
    assert result.data["link/0.2"] < 0.05
    # Churn of 16/128 nodes mid-cycle perturbs but does not break.
    assert result.data["churn/16"] < 0.5


def test_storage_efficiency(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_storage(n=1000, bracket_bits=(3, 4, 5, 6, 8), repeats=3),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Finer brackets -> lower quantization error, monotonically.
    errs = [result.data[str(b)]["mean_rel_error"] for b in (3, 4, 5, 6, 8)]
    assert all(a >= b for a, b in zip(errs, errs[1:]))
    # The store compresses vs a raw score table at coarse brackets.
    assert result.data["3"]["compression"] > 1.0
    # At 8 bits top-10 selection survives quantization.
    assert result.data["8"]["top_k_overlap"] >= 0.8


def test_overhead_vs_dht_baselines(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_overhead(sizes=(200, 500, 1000), repeats=2),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    for n in (200, 500, 1000):
        row = result.data[str(n)]
        # Gossip aggregation ships fewer messages than replicated
        # DHT score management at every size.
        assert row["gossip_messages"] < row["eigentrust_messages"]
