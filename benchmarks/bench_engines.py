"""Engine shoot-out: every registered cycle engine on one fixed problem.

All engines are built through :func:`repro.gossip.factory.make_engine`
on the same (n, matrix, seed), so the timings compare aggregation
strategies — vectorized synchronous push-sum, message-level DES,
asynchronous Poisson-clock gossip, and the deterministic DHT all-reduce
— not setup noise.  Each round rebuilds the engine so DES state never
leaks between iterations.
"""

import numpy as np
import pytest

from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import engine_names, make_engine
from repro.metrics.telemetry import CycleTelemetry
from repro.utils.rng import RngStreams

N = 256
SEED = 0


@pytest.fixture(scope="module")
def bench_S():
    return synthetic_trust_matrix(N, rng=RngStreams(SEED).get("matrix"))


@pytest.mark.parametrize("name", engine_names())
def test_engine_cycle(benchmark, bench_S, name):
    """One aggregation cycle per engine, same matrix and seed."""
    v = np.full(N, 1.0 / N)

    def one_cycle():
        eng = make_engine(
            name, n=N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="probe", probe_columns=64, max_rounds=400,
        )
        return eng.run_cycle(bench_S, v)

    res = benchmark.pedantic(one_cycle, rounds=3, iterations=1)
    assert res.v_next.sum() == pytest.approx(1.0, abs=1e-6)
    benchmark.extra_info["steps"] = res.steps
    benchmark.extra_info["messages_sent"] = res.messages_sent


def test_engine_telemetry_snapshot(results_dir, bench_S):
    """Persist a side-by-side telemetry table for all engines."""
    telemetry = CycleTelemetry()
    v = np.full(N, 1.0 / N)
    for cycle, name in enumerate(engine_names(), start=1):
        eng = make_engine(
            name, n=N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="probe", probe_columns=64, max_rounds=400,
        )
        telemetry.timed(cycle, eng, bench_S, v)
    text = telemetry.render() + "\nengines: " + ", ".join(engine_names())
    (results_dir / "engines.txt").write_text(text + "\n")
    assert len(telemetry) == len(engine_names())
