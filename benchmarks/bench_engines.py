"""Engine shoot-out: every registered cycle engine on one fixed problem.

All engines are built through :func:`repro.gossip.factory.make_engine`
on the same (n, matrix, seed), so the timings compare aggregation
strategies — vectorized synchronous push-sum, message-level DES,
asynchronous Poisson-clock gossip, and the deterministic DHT all-reduce
— not setup noise.  Each round rebuilds the engine so DES state never
leaks between iterations.

Beyond the shoot-out, two kernel benchmarks pin the perf contract of
the fast paths:

* sync engine, full mode at n = 1000 — the allocation-free segment-sum
  kernel must stay >= ``SYNC_SPEEDUP_FLOOR`` x faster than the retained
  ``kernel="legacy"`` reference (per-step CSR construction and the
  ``0.5*(X + A@X)`` allocation chain at its original per-step check
  cadence);
* message engine at n = 500 — the array-backed ``TripletVector`` path
  must finish a cycle within ``MESSAGE_BUDGET_S`` (a fifth of the
  ~10.8 s the dict-backed implementation took on the reference box, so
  holding the budget demonstrates the >= 5x improvement);
* persistent-workspace reuse at n = 1000 — keeping the sync engine's
  cycle buffers alive across ``run_cycle`` calls must be at least
  break-even against per-cycle reallocation;
* the parallel sweep runner — 2 workers must beat serial wall time on
  a multi-core box (skipped on single-core machines);
* the long-lived reputation service at n = 1000 — once the power-node
  set is stable and <= 1% of trust rows change per epoch, warm-started
  incremental re-aggregation must beat a cold from-scratch
  ``GossipTrust.run`` by >= ``SERVICE_SPEEDUP_FLOOR`` x wall time while
  both converge to the same vector;
* the memory-bounded ``kernel="sparse"`` path — step/score parity with
  the fast kernel at n = 1000 (both kernels consume the same partner
  stream and check cadence), and a converged probe cycle at
  n = ``SPARSE_N`` inside the ``SPARSE_RSS_BUDGET_KIB`` per-point
  peak-RSS budget (metered with high-water-mark resets, so the reading
  is the cycle's own working set).
"""

import os
import time

import numpy as np
import pytest

from repro.experiments.fig3_gossip_steps import _fig3_point
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import engine_names, make_engine
from repro.metrics.telemetry import CycleTelemetry
from repro.utils.proc import PeakRssMeter
from repro.utils.rng import RngStreams

N = 256
SEED = 0

#: problem size of the full-mode sync kernel face-off (Table 3's n)
FULL_N = 1000
#: required fast-vs-legacy wall-time ratio at n = FULL_N, full mode
SYNC_SPEEDUP_FLOOR = 3.0
#: problem size of the message-engine budget benchmark
MESSAGE_N = 500
#: wall-time ceiling at n = MESSAGE_N — one fifth of the dict-backed
#: engine's ~10.8 s on the reference box (>= 5x improvement held)
MESSAGE_BUDGET_S = 2.2
#: service closed-loop problem size (matches bench_runner's full mode)
SERVICE_N = 1000
#: required cold-scratch / warm-epoch wall-time ratio at n = SERVICE_N
#: (the acceptance floor; the recorded trajectory runs ~5x)
SERVICE_SPEEDUP_FLOOR = 3.0
#: large-n sparse-kernel budget point (bench_runner's quick tier size)
SPARSE_N = 10_000
#: per-point peak-RSS ceiling for the sparse cycle at n = SPARSE_N
#: (1 GiB; the observed working set is ~150 MiB, so the budget flags
#: only order-of-magnitude regressions, not machine noise)
SPARSE_RSS_BUDGET_KIB = 1 * 1024 * 1024


@pytest.fixture(scope="module")
def bench_S():
    return synthetic_trust_matrix(N, rng=RngStreams(SEED).get("matrix"))


@pytest.mark.parametrize("name", engine_names())
def test_engine_cycle(benchmark, bench_S, name):
    """One aggregation cycle per engine, same matrix and seed."""
    v = np.full(N, 1.0 / N)

    def one_cycle():
        eng = make_engine(
            name, n=N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="probe", probe_columns=64, max_rounds=400,
        )
        return eng.run_cycle(bench_S, v)

    res = benchmark.pedantic(one_cycle, rounds=3, iterations=1)
    assert res.v_next.sum() == pytest.approx(1.0, abs=1e-6)
    benchmark.extra_info["steps"] = res.steps
    benchmark.extra_info["messages_sent"] = res.messages_sent


@pytest.fixture(scope="module")
def bench_S_full():
    return synthetic_trust_matrix(FULL_N, rng=RngStreams(SEED).get("matrix"))


def _median_cycle_time(S, n, repeats=3, **options):
    """Median wall time of one freshly-built engine cycle, in seconds."""
    v = np.full(n, 1.0 / n)
    times = []
    result = None
    for _ in range(repeats):
        eng = make_engine("sync", n=n, rng=RngStreams(SEED), epsilon=1e-4, **options)
        t0 = time.perf_counter()
        result = eng.run_cycle(S, v)
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2], result


@pytest.mark.parametrize("kernel", ["fast", "legacy"])
def test_sync_full_kernel(benchmark, bench_S_full, kernel):
    """Full-mode cycle at n = 1000 per kernel, for the tracked record."""
    v = np.full(FULL_N, 1.0 / FULL_N)
    options = {"kernel": kernel} if kernel == "fast" else {
        "kernel": kernel, "check_every": 1,  # legacy's original cadence
    }

    def one_cycle():
        eng = make_engine(
            "sync", n=FULL_N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="full", **options,
        )
        return eng.run_cycle(bench_S_full, v)

    res = benchmark.pedantic(one_cycle, rounds=3, iterations=1)
    assert res.converged
    benchmark.extra_info["steps"] = res.steps


def test_sync_fast_kernel_speedup(bench_S_full):
    """The segment-sum kernel is >= 3x the legacy chain at n = 1000.

    The legacy kernel runs at ``check_every=1`` — its original per-step
    estimate/residual cadence — so the ratio measures the whole fast
    path (CSR-layout segment-sum, check cadence, sparse warm-start)
    against the pre-kernel implementation it replaced.  Both kernels
    consume the same partner stream, so the convergence step counts
    must agree exactly.
    """
    t_fast, r_fast = _median_cycle_time(
        bench_S_full, FULL_N, mode="full", kernel="fast"
    )
    t_legacy, r_legacy = _median_cycle_time(
        bench_S_full, FULL_N, mode="full", kernel="legacy", check_every=1
    )
    assert r_fast.steps == r_legacy.steps
    assert r_fast.converged and r_legacy.converged
    speedup = t_legacy / t_fast
    assert speedup >= SYNC_SPEEDUP_FLOOR, (
        f"fast kernel only {speedup:.2f}x over legacy "
        f"({t_fast:.3f}s vs {t_legacy:.3f}s)"
    )


def test_workspace_reuse_not_slower(bench_S_full):
    """The persistent workspace is at least break-even vs per-cycle alloc.

    Two sync engines run ``CYCLES`` consecutive full-mode cycles on the
    same matrix, one with the persistent :class:`Workspace` (the
    default) and one rebuilding its buffers every cycle
    (``reuse_workspace=False`` — the pre-workspace baseline).  Reuse
    must be >= 1.0x the reallocation path; the floor carries a 5%
    measurement-noise band.
    """
    CYCLES = 3

    def total_time(reuse: bool) -> float:
        eng = make_engine(
            "sync", n=FULL_N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="full", reuse_workspace=reuse,
        )
        v = np.full(FULL_N, 1.0 / FULL_N)
        t0 = time.perf_counter()
        for _ in range(CYCLES):
            res = eng.run_cycle(bench_S_full, v)
            v = res.v_next / res.v_next.sum()
        return time.perf_counter() - t0

    t_reuse = min(total_time(True) for _ in range(3))
    t_alloc = min(total_time(False) for _ in range(3))
    speedup = t_alloc / t_reuse
    assert speedup >= 0.95, (
        f"workspace reuse is slower than per-cycle reallocation: "
        f"{speedup:.3f}x ({t_reuse:.3f}s vs {t_alloc:.3f}s)"
    )


def test_sync_sparse_kernel_parity(bench_S_full):
    """The sparse kernel replays the fast kernel exactly at n = 1000.

    Both kernels consume the same partner stream and run the same
    estimate/residual cadence, so in both probe and full mode the
    convergence step counts must agree exactly and the cycle scores to
    float64 round-off.
    """
    for mode in ("probe", "full"):
        _, r_fast = _median_cycle_time(
            bench_S_full, FULL_N, repeats=1, mode=mode, kernel="fast"
        )
        _, r_sparse = _median_cycle_time(
            bench_S_full, FULL_N, repeats=1, mode=mode, kernel="sparse"
        )
        assert r_fast.steps == r_sparse.steps, mode
        assert r_fast.converged and r_sparse.converged
        np.testing.assert_allclose(
            r_sparse.v_next, r_fast.v_next, rtol=0, atol=1e-12
        )


def test_sparse_kernel_rss_budget():
    """A converged sparse probe cycle at n = 10^4 inside the RSS budget.

    The per-point meter starts *after* the trust matrix is built, so
    the reading is the kernel's own working set (pools + tiles +
    estimate buffers) on top of the resident baseline — the same
    protocol as bench_runner's ``large_n`` tier and its CI assertion.
    """
    S = synthetic_trust_matrix(SPARSE_N, rng=RngStreams(SEED).get("matrix"))
    v = np.full(SPARSE_N, 1.0 / SPARSE_N)
    eng = make_engine(
        "sync", n=SPARSE_N, rng=RngStreams(SEED),
        epsilon=1e-4, mode="probe", kernel="sparse",
    )
    meter = PeakRssMeter()
    res = eng.run_cycle(S, v)
    peak = meter.read_kib()
    assert res.converged
    if not meter.exact:
        pytest.skip("per-interval RSS metering unavailable on this platform")
    assert peak <= SPARSE_RSS_BUDGET_KIB, (
        f"sparse cycle at n={SPARSE_N} peaked at {peak / 1024:.0f} MiB "
        f"(> {SPARSE_RSS_BUDGET_KIB / 1024:.0f} MiB budget)"
    )


def test_sweep_parallel_beats_serial():
    """``run_sweep`` at 2 workers beats serial on a multi-core box.

    Skipped on single-core machines, where process fan-out can only add
    overhead and the contract explicitly does not apply.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 CPUs for parallel speedup")
    points = [
        SweepPoint(
            fn=_fig3_point,
            kwargs={
                "n": 300,
                "epsilon": 1e-3,
                "cycles_per_point": 1,
                "engine": "sync",
            },
            seed=seed,
        )
        for seed in range(8)
    ]
    serial = run_sweep(points, workers=1)
    parallel = run_sweep(points, workers=2)
    assert [v[0] for v in serial.values()] == [v[0] for v in parallel.values()]
    # 2 workers must beat serial; allow generous scheduling overhead.
    assert parallel.wall_time < serial.wall_time * 0.9, (
        f"parallel sweep not faster: {parallel.wall_time:.3f}s (2 workers) "
        f"vs {serial.wall_time:.3f}s (serial)"
    )


def test_message_engine_budget(benchmark):
    """Array-backed message engine finishes n = 500 inside the budget.

    ``MESSAGE_BUDGET_S`` is a fifth of what the dict-backed
    ``TripletVector`` implementation took on the reference box, so
    staying under it holds the >= 5x kernel-layer improvement.
    """
    S = synthetic_trust_matrix(MESSAGE_N, rng=RngStreams(SEED).get("matrix"))
    v = np.full(MESSAGE_N, 1.0 / MESSAGE_N)

    def one_cycle():
        eng = make_engine(
            "message", n=MESSAGE_N, rng=RngStreams(SEED),
            epsilon=1e-4, max_rounds=400,
        )
        return eng.run_cycle(S, v)

    res = benchmark.pedantic(one_cycle, rounds=3, iterations=1)
    assert res.converged
    assert benchmark.stats.stats.median < MESSAGE_BUDGET_S
    benchmark.extra_info["steps"] = res.steps


def test_service_incremental_beats_scratch():
    """Warm service epochs beat from-scratch aggregation at n = 1000.

    The closed loop bootstraps a mature synthetic network, waits for
    the power-node set to stabilize (warm-start's fixed point is only
    stationary then), and streams feedback batches touching <= 1% of
    rater rows per epoch.  The mean warm epoch — ledger drain, CSR row
    splice, warm ``run``, Bloom store rebuild — must be >= 3x faster
    than one cold ``GossipTrust.run`` on the identical matrix and
    power-node set, in measurably fewer gossip steps, with both
    converging to the same vector (parity within the 2e-3 scale two
    independently-gossiped delta=1e-3 runs can agree to).
    """
    from repro.service import ServeSimConfig, simulate_service

    report = simulate_service(
        ServeSimConfig(
            n=SERVICE_N,
            epochs=4,
            events_per_epoch=100,
            queries_per_epoch=0,
            seed=SEED,
        )
    )
    assert report.power_nodes_stable
    assert all(
        ep.dirty_rows <= SERVICE_N // 100 for ep in report.epoch_reports
    ), "event stream must keep epochs within 1% dirty rows"
    assert report.step_speedup > 1.0, (
        f"warm epoch not measurably fewer steps: x{report.step_speedup:.2f}"
    )
    assert report.wall_speedup >= SERVICE_SPEEDUP_FLOOR, (
        f"incremental only x{report.wall_speedup:.2f} over scratch "
        f"({report.warm_wall_s:.3f}s warm vs {report.cold_wall_s:.3f}s cold)"
    )
    assert report.vector_error < 2e-3, (
        f"warm and cold fixed points disagree: err={report.vector_error:.2e}"
    )


def test_engine_telemetry_snapshot(results_dir, bench_S):
    """Persist a side-by-side telemetry table for all engines."""
    telemetry = CycleTelemetry()
    v = np.full(N, 1.0 / N)
    for cycle, name in enumerate(engine_names(), start=1):
        eng = make_engine(
            name, n=N, rng=RngStreams(SEED),
            epsilon=1e-4, mode="probe", probe_columns=64, max_rounds=400,
        )
        telemetry.timed(cycle, eng, bench_S, v)
    text = telemetry.render() + "\nengines: " + ", ".join(engine_names())
    (results_dir / "engines.txt").write_text(text + "\n")
    assert len(telemetry) == len(engine_names())
