"""Bench: Fig. 4 — RMS aggregation error under malicious peers, n = 1000.

Fig. 4(a) shape assertions: error grows with the malicious fraction;
alpha = 0.15 gives less error than alpha = 0 (paper: ~20% less; we
measure ~10-16%); alpha = 0.3 is not better than 0.15.

Fig. 4(b) shape assertions: power nodes (alpha = 0.15) beat alpha = 0
across collusion group sizes (paper: >= ~30% less error at group size
> 6 with 5% colluders; we measure ~25-35%); with power nodes the error
grows with group size (bigger rings capture more anchor slots).
"""

import numpy as np

from repro.experiments.fig4_malicious import run_fig4a, run_fig4b

GAMMAS = (0.0, 0.1, 0.2, 0.3, 0.4)
GROUP_SIZES = (2, 4, 6, 8, 10)


def test_fig4a_independent_malicious(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fig4a(n=1000, gammas=GAMMAS, alphas=(0.0, 0.15, 0.3), repeats=5),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    a0 = result.data["alpha=0"]
    a15 = result.data["alpha=0.15"]
    a30 = result.data["alpha=0.3"]

    # Error grows with gamma for every alpha.
    for curve in (a0, a15, a30):
        assert curve[0.4] > curve[0.1]

    # No attack, no error (matched transaction streams).
    for curve in (a0, a15, a30):
        assert curve[0.0] < 1e-6

    # Power nodes at 0.15 cut the error vs no power nodes.
    attacked = [g for g in GAMMAS if g > 0]
    mean_a0 = np.mean([a0[g] for g in attacked])
    mean_a15 = np.mean([a15[g] for g in attacked])
    assert mean_a15 < 0.97 * mean_a0

    # Pushing alpha to 0.3 does not keep improving (anchor capture and
    # over-weighting eat the extra damping).
    mean_a30 = np.mean([a30[g] for g in attacked])
    assert mean_a30 > 0.9 * mean_a15


def test_fig4b_collusive_malicious(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fig4b(
            n=1000,
            fractions=(0.05, 0.10),
            group_sizes=GROUP_SIZES,
            alphas=(0.0, 0.15),
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    for frac in ("5%", "10%"):
        plain = result.data[f"{frac} colluders, alpha=0"]
        power = result.data[f"{frac} colluders, alpha=0.15"]
        # Power nodes reduce error at every group size.
        for gs in GROUP_SIZES:
            assert power[gs] < plain[gs]
        # Paper: ~30% less error at group sizes > 6 (5% colluders).
        big = [gs for gs in GROUP_SIZES if gs > 6]
        assert np.mean([power[g] for g in big]) < 0.85 * np.mean(
            [plain[g] for g in big]
        )
        # Bigger collusion rings hurt more when anchors are in play.
        assert power[GROUP_SIZES[-1]] > power[GROUP_SIZES[0]]
